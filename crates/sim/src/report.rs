//! Run reports: everything the experiment harnesses consume.

use dvmc_coherence::CacheStats;
use dvmc_consistency::CommitRecord;
use dvmc_core::{ObsMetrics, UniprocStats, Violation, ViolationReport};
use dvmc_faults::Fault;
use dvmc_pipeline::CoreStats;
use dvmc_types::Cycle;

/// The outcome of a fault-injection trial (§6.1).
#[derive(Clone, Debug)]
pub struct Detection {
    /// The injected fault.
    pub fault: Fault,
    /// When the fault took effect.
    pub injected_at: Cycle,
    /// When a checker (or the hang watchdog) flagged it.
    pub detected_at: Cycle,
    /// The first violation raised, if detection came from a checker
    /// (`None` for watchdog/hang detections).
    pub violation: Option<Violation>,
    /// Whether SafetyNet still held a checkpoint predating the fault.
    pub recoverable: bool,
}

impl Detection {
    /// Detection latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.detected_at.saturating_sub(self.injected_at)
    }
}

/// How a recovery episode ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryOutcome {
    /// Rollback/replay succeeded: the run completed with no surviving
    /// violations after the final replay.
    Recovered,
    /// The error re-manifested through every allowed retry (a persistent
    /// fault, or one that escaped the checkpoint window); the run gave up
    /// and the forensics carry the last detection.
    Unrecoverable,
}

/// What end-to-end recovery did during a run (present only when the
/// system armed recovery *and* at least one rollback happened or was
/// refused).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Rollback/replay attempts performed.
    pub attempts: u32,
    /// Retry escalations (checkpoint-interval widenings).
    pub escalations: u32,
    /// The checkpoint cycle the last rollback restored.
    pub checkpoint: Cycle,
    /// How the episode ended.
    pub outcome: RecoveryOutcome,
}

/// One recovery *episode* of a service-mode run (DESIGN.md §13): from the
/// first fault of a burst landing to the machine running clean again.
/// Soak runs see many of these; `RecoveryReport` summarizes the run's
/// single episode in the classic one-fault experiments.
#[derive(Clone, Debug)]
pub struct EpisodeReport {
    /// The faults injected while the episode was open (overlapping
    /// transients pile into one episode).
    pub faults: Vec<Fault>,
    /// When the episode's first fault took effect.
    pub injected_at: Cycle,
    /// When a checker or the watchdog first flagged it (`None`: never
    /// detected — the faults were architecturally masked and aged out).
    pub detected_at: Option<Cycle>,
    /// Rollback/replay attempts spent on this episode.
    pub attempts: u32,
    /// Deepest rollback of the episode, in cycles rewound.
    pub rollback_depth: Cycle,
    /// When the machine was clean again (`None`: still open at shutdown,
    /// or unrecoverable).
    pub recovered_at: Option<Cycle>,
}

impl EpisodeReport {
    /// How many faults overlapped in this episode.
    pub fn overlap(&self) -> usize {
        self.faults.len()
    }

    /// Injection-to-detection latency, when detected.
    pub fn detection_latency(&self) -> Option<Cycle> {
        self.detected_at.map(|d| d.saturating_sub(self.injected_at))
    }

    /// Detection-to-clean latency, when recovered.
    pub fn recovery_latency(&self) -> Option<Cycle> {
        match (self.detected_at, self.recovered_at) {
            (Some(d), Some(r)) => Some(r.saturating_sub(d)),
            _ => None,
        }
    }
}

/// One streaming observability snapshot of a service-mode window. All
/// fields are integers (deltas over the window unless noted), so the
/// canonical JSON artifact stays float-free and byte-identical across
/// thread counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowSnapshot {
    /// Window start cycle (inclusive).
    pub start: Cycle,
    /// Window end cycle (exclusive).
    pub end: Cycle,
    /// Memory operations retired during the window (saturating across
    /// rollbacks: replayed work is not double-counted).
    pub retired_ops: u64,
    /// Service requests generated (open-loop arrivals).
    pub requests: u64,
    /// Faults injected.
    pub injected: u64,
    /// Outstanding faults that aged out architecturally masked.
    pub masked: u64,
    /// Recovery episodes closed.
    pub episodes_closed: u64,
    /// Sum of detection latencies of episodes closed this window.
    pub detection_latency_sum: Cycle,
    /// Number of detection latencies in the sum.
    pub detection_latency_count: u64,
    /// Sum of recovery latencies of episodes closed this window.
    pub recovery_latency_sum: Cycle,
    /// Number of recovery latencies in the sum.
    pub recovery_latency_count: u64,
    /// Deepest rollback of the window, in cycles rewound.
    pub rollback_depth_max: Cycle,
    /// Rollback/replay attempts started.
    pub retries: u64,
    /// Epoch-sorter occupancy high-water mark (instantaneous, not a
    /// delta).
    pub sorter_hwm: u64,
    /// Inform-Epoch messages enqueued (delta).
    pub informs: u64,
    /// Epoch messages CRC-checked against the MET (delta).
    pub crc_checks: u64,
    /// Cache epochs closed (delta).
    pub epoch_closes: u64,
    /// Arrival→commit queueing delays closed this window (count). Only
    /// open-loop streams produce these; zero for closed-loop workloads.
    pub queue_delay_count: u64,
    /// Nearest-rank p50 of those delays, in cycles (0 when none closed).
    pub queue_delay_p50: Cycle,
    /// Nearest-rank p99 of those delays, in cycles (0 when none closed).
    pub queue_delay_p99: Cycle,
}

/// Why a service-mode run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceStop {
    /// The configured horizon was reached (the healthy outcome).
    Horizon,
    /// A checker raised a violation with no fault ever injected — a false
    /// positive, fatal for a dynamic-verification scheme.
    FalseViolation,
    /// An episode exhausted its retries or escaped the checkpoint window.
    Unrecoverable,
}

/// The result of a service-mode (soak) run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Per-window streaming snapshots, in order.
    pub windows: Vec<WindowSnapshot>,
    /// Recovery episodes, in order of their first injection.
    pub episodes: Vec<EpisodeReport>,
    /// Faults injected over the whole run.
    pub injected: u64,
    /// Faults that aged out architecturally masked (never detected,
    /// outlived the full SafetyNet window without consequence).
    pub masked: u64,
    /// Why the run stopped.
    pub stopped: ServiceStop,
    /// The final conventional report (stats, obs, memory digest…).
    pub report: RunReport,
}

impl ServiceReport {
    /// Episodes that were detected but never recovered (the acceptance
    /// gate counts these; zero on a healthy transient-only soak).
    pub fn unrecovered(&self) -> usize {
        self.episodes
            .iter()
            .filter(|e| e.detected_at.is_some() && e.recovered_at.is_none())
            .count()
    }

    /// Detection latencies of all detected episodes.
    pub fn detection_latencies(&self) -> Vec<Cycle> {
        self.episodes.iter().filter_map(EpisodeReport::detection_latency).collect()
    }

    /// Recovery latencies of all recovered episodes.
    pub fn recovery_latencies(&self) -> Vec<Cycle> {
        self.episodes.iter().filter_map(EpisodeReport::recovery_latency).collect()
    }
}

/// Nearest-rank percentile over integer samples (`p` in 0–100). Pure
/// integer arithmetic: canonical artifacts must not depend on float
/// formatting. Returns `None` on an empty series.
pub fn percentile(samples: &[Cycle], p: u32) -> Option<Cycle> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p as usize * sorted.len()).div_ceil(100);
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Checkpoint and rollback cost counters (DESIGN.md §14). All costs are
/// approximate serialized bytes / cycle counts, deterministic across
/// kernel modes for a given checkpoint mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckpointStats {
    /// Checkpoints captured (whole snapshots or deltas).
    pub snapshots_taken: u64,
    /// Approximate bytes of checkpoint state logged.
    pub bytes_logged: u64,
    /// Machine parts captured across all checkpoints (a whole snapshot
    /// counts every part; a delta only what was dirty).
    pub parts_captured: u64,
    /// Evicted deltas folded into the base snapshot (delta-log mode).
    pub deltas_folded: u64,
    /// Rollbacks performed (recovery plus bench-forced).
    pub rollbacks: u64,
    /// Machine parts restored across all rollbacks (cores, cache
    /// controllers, home controllers, memory arrays, networks).
    pub parts_restored: u64,
    /// Cycles of inert core history reconstructed by undo-replay catch-up
    /// during delta-log rollbacks (cost of not having captured clean
    /// cores every interval).
    pub undo_replay_cycles: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Transactions completed across all threads.
    pub transactions: u64,
    /// Whether every thread finished its transaction quota.
    pub completed: bool,
    /// Whether the hang watchdog fired.
    pub hung: bool,
    /// Violations observed during error-free runs (must be empty) or
    /// before the run stopped on detection.
    pub violations: Vec<Violation>,
    /// Fault-injection outcome, when a fault was scheduled.
    pub detection: Option<Detection>,
    /// Per-core pipeline statistics.
    pub core_stats: Vec<CoreStats>,
    /// Per-core replay statistics.
    pub replay_stats: Vec<UniprocStats>,
    /// Per-node cache statistics.
    pub cache_stats: Vec<CacheStats>,
    /// Bytes on the most-loaded torus link.
    pub max_link_bytes: u64,
    /// Total torus bytes.
    pub total_bytes: u64,
    /// Coherence-checker (Inform-Epoch) bytes.
    pub checker_bytes: u64,
    /// BER coordination bytes.
    pub ber_bytes: u64,
    /// Per-node checker observability metrics (one entry per node, the
    /// node's checkers merged); empty when observability is disabled.
    pub obs: Vec<ObsMetrics>,
    /// Forensic event trace around the detection; `None` when
    /// observability is disabled or nothing was detected.
    pub forensics: Option<ViolationReport>,
    /// End-to-end recovery outcome; `None` when recovery was not armed or
    /// never triggered.
    pub recovery: Option<RecoveryReport>,
    /// Order-independent FNV-1a digest of final memory contents — the
    /// recovery experiment's "byte-identical to a fault-free golden run"
    /// comparison.
    pub memory_digest: u64,
    /// Per-core committed-operation logs, for offline re-verification by
    /// the consistency oracle (`dvmc_consistency::oracle`); empty unless
    /// the configuration set `record_commits`.
    pub commit_logs: Vec<Vec<CommitRecord>>,
    /// Checkpoint and rollback cost counters (zeroed when BER is off).
    pub checkpoint: CheckpointStats,
}

impl RunReport {
    /// Mean bandwidth (bytes/cycle) on the most-loaded link — the metric
    /// of Figure 7.
    pub fn max_link_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.max_link_bytes as f64 / self.cycles as f64
        }
    }

    /// Total retired memory operations.
    pub fn retired_ops(&self) -> u64 {
        self.core_stats.iter().map(|s| s.retired_ops).sum()
    }

    /// Aggregate demand L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.cache_stats.iter().map(|s| s.l1_misses).sum()
    }

    /// Aggregate replay L1 misses (Figure 6 numerator).
    pub fn replay_l1_misses(&self) -> u64 {
        self.cache_stats.iter().map(|s| s.replay_l1_misses).sum()
    }
}

/// Mean and sample standard deviation of a series — §5 reports means with
/// one-standard-deviation error bars over ten perturbed runs.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let xs: Vec<Cycle> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50), Some(50));
        assert_eq!(percentile(&xs, 99), Some(99));
        assert_eq!(percentile(&xs, 100), Some(100));
        assert_eq!(percentile(&xs, 0), Some(1));
        assert_eq!(percentile(&[7], 99), Some(7));
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[30, 10, 20], 50), Some(20), "sorts first");
    }

    #[test]
    fn episode_latencies() {
        let e = EpisodeReport {
            faults: vec![Fault::DropMessage, Fault::DropMessage],
            injected_at: 1_000,
            detected_at: Some(4_000),
            attempts: 2,
            rollback_depth: 3_500,
            recovered_at: Some(9_000),
        };
        assert_eq!(e.overlap(), 2);
        assert_eq!(e.detection_latency(), Some(3_000));
        assert_eq!(e.recovery_latency(), Some(5_000));
        let masked = EpisodeReport {
            detected_at: None,
            recovered_at: None,
            ..e
        };
        assert_eq!(masked.detection_latency(), None);
        assert_eq!(masked.recovery_latency(), None);
    }

    #[test]
    fn detection_latency() {
        let d = Detection {
            fault: Fault::DropMessage,
            injected_at: 100,
            detected_at: 450,
            violation: None,
            recoverable: true,
        };
        assert_eq!(d.latency(), 350);
    }
}
