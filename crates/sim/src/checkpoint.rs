//! Checkpoint state carried by the backward-error-recovery log
//! (DESIGN.md §14).
//!
//! The [`SafetyNet`](dvmc_ber::SafetyNet) log holds one
//! [`MachineCheckpoint`] per interval. Three shapes exist:
//!
//! - [`MachineCheckpoint::Unarmed`]: BER coordination traffic is modelled
//!   but recovery is off — there is nothing to restore.
//! - [`MachineCheckpoint::Whole`]: a deep clone of the entire machine
//!   ([`Snapshot`]), the original scheme. Capture cost is O(machine) per
//!   interval no matter how little happened.
//! - [`MachineCheckpoint::Delta`]: a log-based incremental checkpoint.
//!   Each interval captures only the parts that may have mutated since
//!   the previous capture (per the dirty-part flags the cluster and the
//!   system maintain), plus a small always-captured [`Misc`] record.
//!   Rollback reconstructs the machine by undo-replay over the log: for
//!   every part, restore the newest image at or before the recovery
//!   point — falling back to the base snapshot — and catch idle cores up
//!   over the uncaptured (provably inert) span.
//!
//! When the log evicts its oldest delta to make room, the delta is
//! *folded* into the base snapshot ([`Delta::fold_into`]) so the base
//! always reflects the machine just before the oldest retained entry.

use crate::system::Snapshot;
use dvmc_coherence::{AddrReq, CacheNode, HomeCtrl, HomeMemImage, Msg};
use dvmc_interconnect::{BroadcastTree, Torus};
use dvmc_pipeline::Core;
use dvmc_types::rng::DetRng;
use dvmc_types::{Cycle, NodeId};

/// Small, cheap state that mutates nearly every cycle and therefore rides
/// in **every** delta rather than being dirty-tracked: the fault-injection
/// RNG, the watchdog progress table, and the bandwidth-accounting
/// counters.
#[derive(Clone)]
pub(crate) struct Misc {
    pub rng: DetRng,
    pub progress: Vec<(u64, Cycle)>,
    pub checker_bytes: u64,
    pub ber_bytes: u64,
}

/// One incremental checkpoint: the machine parts that may have mutated
/// since the previous capture, each tagged with its node index.
#[derive(Clone)]
pub(crate) struct Delta {
    pub cores: Vec<(usize, Core)>,
    pub nodes: Vec<(usize, CacheNode)>,
    pub home_ctrls: Vec<(usize, HomeCtrl)>,
    pub home_mems: Vec<(usize, HomeMemImage)>,
    pub data_net: Option<Torus<Msg>>,
    pub addr_net: Option<Option<BroadcastTree<AddrReq>>>,
    pub misc: Misc,
}

impl Delta {
    /// An empty delta (nothing dirty) carrying the given misc record —
    /// the shape of a checkpoint over a fully quiescent interval.
    pub fn empty(misc: Misc) -> Self {
        Delta {
            cores: Vec::new(),
            nodes: Vec::new(),
            home_ctrls: Vec::new(),
            home_mems: Vec::new(),
            data_net: None,
            addr_net: None,
            misc,
        }
    }

    /// Approximate serialized size of this delta, in bytes.
    pub fn approx_bytes(&self) -> u64 {
        let cores: u64 = self.cores.iter().map(|(_, c)| c.approx_state_bytes()).sum();
        let nodes: u64 = self.nodes.iter().map(|(_, n)| n.approx_state_bytes()).sum();
        let ctrls: u64 = self.home_ctrls.iter().map(|(_, h)| h.approx_ctrl_bytes()).sum();
        let mems: u64 = self.home_mems.iter().map(|(_, m)| m.approx_bytes()).sum();
        let data = self.data_net.as_ref().map_or(0, Torus::approx_state_bytes);
        let addr = self
            .addr_net
            .as_ref()
            .and_then(Option::as_ref)
            .map_or(0, BroadcastTree::approx_state_bytes);
        let misc = (std::mem::size_of::<Misc>() + self.misc.progress.len() * 16) as u64;
        cores + nodes + ctrls + mems + data + addr + misc
    }

    /// Number of captured parts (cost accounting).
    pub fn parts(&self) -> u64 {
        (self.cores.len()
            + self.nodes.len()
            + self.home_ctrls.len()
            + self.home_mems.len()
            + usize::from(self.data_net.is_some())
            + usize::from(self.addr_net.is_some())) as u64
    }

    /// Folds this (just-evicted, oldest) delta into `base`, which then
    /// reflects the machine at this delta's capture time `taken_at`.
    /// `base_core_at[i]` records the capture time of each base core image
    /// (rollback catches cores up from there).
    pub fn fold_into(&self, base: &mut Snapshot, base_core_at: &mut [Cycle], taken_at: Cycle) {
        for (i, core) in &self.cores {
            base.cores[*i] = core.clone();
            base_core_at[*i] = taken_at;
        }
        for (i, node) in &self.nodes {
            base.cluster.restore_node(NodeId(*i as u8), node);
        }
        for (i, ctrl) in &self.home_ctrls {
            base.cluster.restore_home_ctrl(NodeId(*i as u8), ctrl);
        }
        for (i, mem) in &self.home_mems {
            base.cluster.restore_home_mem(NodeId(*i as u8), mem);
        }
        if let Some(net) = &self.data_net {
            base.cluster.restore_data_net(net);
        }
        if let Some(net) = &self.addr_net {
            base.cluster.restore_addr_net(net);
        }
        base.rng = self.misc.rng.clone();
        base.progress = self.misc.progress.clone();
        base.cluster
            .set_traffic_counters(self.misc.checker_bytes, self.misc.ber_bytes);
    }
}

/// What one entry of the recovery log holds.
#[derive(Clone)]
pub(crate) enum MachineCheckpoint {
    /// BER timing modelled, recovery off: nothing restorable.
    Unarmed,
    /// A deep clone of the whole machine.
    Whole(Box<Snapshot>),
    /// A log-based incremental checkpoint over a base snapshot.
    Delta(Box<Delta>),
}

impl MachineCheckpoint {
    /// Approximate serialized size, in bytes.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            MachineCheckpoint::Unarmed => 0,
            MachineCheckpoint::Whole(snap) => snap.approx_bytes(),
            MachineCheckpoint::Delta(delta) => delta.approx_bytes(),
        }
    }

    /// Number of machine parts this checkpoint captured (cost accounting;
    /// a whole snapshot captures everything: per node a core, a cache
    /// controller, a home controller, and a home memory, plus both
    /// networks).
    pub fn parts(&self) -> u64 {
        match self {
            MachineCheckpoint::Unarmed => 0,
            MachineCheckpoint::Whole(snap) => snap.cores.len() as u64 * 4 + 2,
            MachineCheckpoint::Delta(delta) => delta.parts(),
        }
    }
}
