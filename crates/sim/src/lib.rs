//! # The full-system simulator
//!
//! Integrates every substrate: out-of-order cores (`dvmc-pipeline`), the
//! coherent memory system (`dvmc-coherence` over `dvmc-interconnect`), the
//! DVMC checkers (`dvmc-core`, embedded in the cores and controllers),
//! SafetyNet BER (`dvmc-ber`), the synthetic commercial workloads
//! (`dvmc-workloads`), and fault injection (`dvmc-faults`).
//!
//! The evaluation methodology follows §5: 8-node systems (sweepable for
//! Figure 9), MOSI directory or snooping coherence, SC/TSO/PSO/RMO
//! consistency, runs measured in completed transactions, and ten
//! pseudo-randomly perturbed repetitions per configuration.
//!
//! Entry points: [`SystemBuilder`] for one-off systems, [`System`] for the
//! cycle loop, [`RunReport`] for results, and [`perturbed_runs`] for the
//! §5 repetition methodology.

mod checkpoint;
pub mod config;
pub mod report;
pub mod system;

pub use config::{
    CheckpointMode, ConfigError, KernelMode, Protection, RecoveryPolicy, SystemBuilder,
    SystemConfig,
};
pub use dvmc_ber::{BerConfigError, SafetyNetConfig};
pub use dvmc_coherence::Protocol;
pub use report::{
    mean_std, percentile, CheckpointStats, Detection, EpisodeReport, RecoveryOutcome,
    RecoveryReport, RunReport, ServiceReport, ServiceStop, WindowSnapshot,
};
pub use system::System;

/// Runs one fully-specified simulation cell to completion and returns its
/// report.
///
/// This is the campaign runner's unit of work: a pure function of the
/// configuration (plus `max_cycles`), with no ambient state, so cells can
/// be fanned out across worker threads in any order and still produce
/// bit-identical reports. `System` owns all its state and is `Send` (the
/// workspace holds no `Rc`/`RefCell`; instruction streams are
/// `Box<dyn InstrStream + Send>`).
///
/// # Panics
///
/// Panics if `cfg` fails [`SystemConfig::validate`].
pub fn run_cell(cfg: &SystemConfig, max_cycles: u64) -> RunReport {
    System::new(cfg.clone()).run_to_completion(max_cycles)
}

/// Runs `runs` perturbed repetitions of the configuration produced by
/// `make` (which receives the per-run *perturbation* seed; the program
/// seed should stay fixed across runs), as §5 prescribes, and returns the
/// reports.
pub fn perturbed_runs(
    runs: u32,
    base_seed: u64,
    max_cycles: u64,
    make: impl Fn(u64) -> System,
) -> Vec<RunReport> {
    (0..runs)
        .map(|r| {
            let perturbation = dvmc_types::rng::perturbation_seed(base_seed, r);
            let mut sys = make(perturbation);
            sys.run_to_completion(max_cycles)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The campaign runner moves `System`s and their reports across worker
    /// threads; this fails to compile if that ever regresses.
    #[test]
    fn system_and_report_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
        assert_send::<RunReport>();
        assert_send::<SystemConfig>();
    }
}
