//! System configuration and builder.

use dvmc_ber::{BerConfigError, SafetyNetConfig};
use dvmc_coherence::{ClusterConfig, Protocol};
use dvmc_consistency::Model;
use dvmc_faults::FaultPlan;
use dvmc_pipeline::CoreConfig;
use dvmc_workloads::spec::{WorkloadKind, WorkloadParams};

/// Which protection mechanisms are active — the configurations of
/// Figure 5's component breakdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Protection {
    /// SafetyNet backward error recovery.
    pub ber: bool,
    /// Cache Coherence verification (DVCC: CET/MET/Inform-Epochs).
    pub coherence: bool,
    /// Uniprocessor Ordering + Allowable Reordering verification (DVUO:
    /// the verification pipeline stage and its checkers).
    pub core: bool,
}

impl Protection {
    /// Unprotected baseline ("Base").
    pub const BASE: Protection = Protection {
        ber: false,
        coherence: false,
        core: false,
    };
    /// BER only ("SN").
    pub const SN: Protection = Protection {
        ber: true,
        coherence: false,
        core: false,
    };
    /// BER + coherence verification ("SN+DVCC").
    pub const SN_DVCC: Protection = Protection {
        ber: true,
        coherence: true,
        core: false,
    };
    /// BER + uniprocessor-ordering verification ("SN+DVUO").
    pub const SN_DVUO: Protection = Protection {
        ber: true,
        coherence: false,
        core: true,
    };
    /// Full DVMC with BER ("DVMC").
    pub const FULL: Protection = Protection {
        ber: true,
        coherence: true,
        core: true,
    };

    /// Display label matching Figure 5.
    pub fn label(&self) -> &'static str {
        match (self.ber, self.coherence, self.core) {
            (false, false, false) => "Base",
            (true, false, false) => "SN",
            (true, true, false) => "SN+DVCC",
            (true, false, true) => "SN+DVUO",
            (true, true, true) => "DVMC",
            _ => "custom",
        }
    }
}

/// How the simulation loop advances time (DESIGN.md §14).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelMode {
    /// Tick every cycle, quiescent or not — the original loop. Kept as
    /// the reference implementation the event kernel is regressed
    /// against.
    Legacy,
    /// Event-scheduled: every component reports the next cycle at which
    /// it can do observable work; the scheduler jumps straight to the
    /// minimum, skipping quiescent cycles. Bit-identical to `Legacy` by
    /// construction (the equivalence suite enforces it), an order of
    /// magnitude faster on quiet open-loop workloads.
    #[default]
    Event,
}

/// How BER checkpoints capture machine state (DESIGN.md §14).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckpointMode {
    /// Deep-clone the whole machine every interval — the original
    /// scheme. O(machine) per checkpoint regardless of activity.
    Snapshot,
    /// Log-based incremental checkpoints: capture only the parts dirtied
    /// since the previous interval; rollback reconstructs the machine by
    /// undo-replay over the delta log. O(activity) per checkpoint.
    #[default]
    DeltaLog,
}

/// How hard the system tries before declaring an error unrecoverable.
///
/// BER recovers transient faults by rolling back and replaying; a
/// persistent fault re-manifests on every replay. Each retry widens the
/// checkpoint interval by `backoff_factor` (escalation: a wider window
/// cuts checkpoint overhead and gives the replay more room), and after
/// `max_retries` rollbacks the run gives up with an unrecoverable
/// verdict that carries the detection forensics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryPolicy {
    /// Rollback/replay attempts before giving up.
    pub max_retries: u32,
    /// Checkpoint-interval growth factor applied at each escalation.
    pub backoff_factor: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_factor: 2,
        }
    }
}

/// A rejected system configuration.
///
/// Node identifiers are 8-bit ([`dvmc_types::NodeId`] wraps a `u8`), so a
/// system is capped at 255 nodes; exceeding the cap used to truncate
/// silently (`i as u8`), aliasing distinct nodes. Configurations are now
/// validated up front and refused instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `nodes` was zero.
    NoNodes,
    /// `nodes` exceeds the 255 the 8-bit node identifier can address.
    TooManyNodes {
        /// The requested node count.
        nodes: usize,
    },
    /// A recovery policy was requested without BER protection: there is
    /// no checkpoint log to roll back to.
    RecoveryWithoutBer,
    /// The SafetyNet configuration itself is invalid.
    Ber(BerConfigError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "a system needs at least one node"),
            ConfigError::TooManyNodes { nodes } => write!(
                f,
                "{nodes} nodes exceed the {} a u8 NodeId can address",
                u8::MAX
            ),
            ConfigError::RecoveryWithoutBer => write!(
                f,
                "recovery needs BER protection: without SafetyNet there is no checkpoint to roll back to"
            ),
            ConfigError::Ber(e) => write!(f, "invalid SafetyNet configuration: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full-system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of nodes (processors).
    pub nodes: usize,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Consistency model.
    pub model: Model,
    /// Active protection mechanisms.
    pub protection: Protection,
    /// Torus link bandwidth in bytes/cycle (Figure 8 sweeps this).
    pub link_bandwidth: u32,
    /// Workload selection.
    pub workload: WorkloadParams,
    /// Optional fault to inject (§6.1).
    pub fault: Option<FaultPlan>,
    /// Additional scheduled faults beyond [`fault`](Self::fault) — a
    /// fault *storm* for soak runs (DESIGN.md §13). Injected in schedule
    /// order, one at a time: the next fault begins its injection attempts
    /// only once the previous one has taken, so a single-`fault`
    /// configuration draws the identical RNG sequence whether this is
    /// empty or not.
    pub storm: Vec<FaultPlan>,
    /// SafetyNet parameters (checkpoint cadence, validation latency, log
    /// depth, coordination traffic). Only consulted when
    /// [`Protection::ber`] is on.
    pub ber: SafetyNetConfig,
    /// End-to-end recovery: `Some` arms rollback/replay on detection —
    /// checkpoints then carry full system snapshots. `None` (the default)
    /// keeps BER a pure timing model and stops the run at detection, as
    /// the error-detection experiments expect.
    pub recovery: Option<RecoveryPolicy>,
    /// Declare a hang if no processor retires for this many cycles.
    pub watchdog_cycles: u64,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Verification cache capacity in words (§6.3: 32–256 bytes).
    pub vc_words: usize,
    /// Cycles between artificial membar injections (§4.2).
    pub membar_injection_period: u64,
    /// Epoch-sorter priority-queue capacity (Table 6: 256).
    pub sorter_capacity: usize,
    /// Record every committed operation per core (litmus harness and
    /// trace-level debugging; off for benchmarks — the log grows with the
    /// run).
    pub record_commits: bool,
    /// Per-checker observability ring-buffer capacity in events; `0`
    /// leaves every checker's event sink detached (the default — the
    /// checkers' hot paths then pay a single `Option` branch).
    pub obs_capacity: usize,
    /// How the simulation loop advances time.
    pub kernel: KernelMode,
    /// How BER checkpoints capture machine state.
    pub checkpoint: CheckpointMode,
}

impl SystemConfig {
    /// Checks the configuration's structural invariants; every entry
    /// point that builds a [`crate::System`] calls this first.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.nodes > u8::MAX as usize {
            return Err(ConfigError::TooManyNodes { nodes: self.nodes });
        }
        if self.protection.ber {
            self.ber.validate().map_err(ConfigError::Ber)?;
        }
        if self.recovery.is_some() && !self.protection.ber {
            return Err(ConfigError::RecoveryWithoutBer);
        }
        Ok(())
    }

    /// The cluster configuration implied by this system configuration.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut c = ClusterConfig::paper_default(self.nodes, self.protocol);
        c.link_bandwidth = self.link_bandwidth;
        c.node.verify = self.protection.coherence;
        c.home.verify = self.protection.coherence;
        c.home.sorter_capacity = self.sorter_capacity;
        c
    }

    /// The core configuration implied by this system configuration.
    pub fn core_config(&self) -> CoreConfig {
        CoreConfig {
            model: self.model,
            dvmc: self.protection.core,
            vc_words: self.vc_words,
            membar_injection_period: self.membar_injection_period,
            record_commits: self.record_commits,
            ..CoreConfig::default()
        }
    }
}

/// Builder for a [`crate::System`].
///
/// # Examples
///
/// ```rust
/// use dvmc_sim::{Protocol, SystemBuilder};
/// use dvmc_consistency::Model;
/// use dvmc_workloads::spec::WorkloadKind;
///
/// let mut system = SystemBuilder::new()
///     .nodes(2)
///     .protocol(Protocol::Directory)
///     .model(Model::Tso)
///     .dvmc(true)
///     .workload(WorkloadKind::Jbb, 4)
///     .seed(1)
///     .build();
/// let report = system.run_to_completion(2_000_000);
/// assert!(report.completed);
/// assert!(report.violations.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    nodes: usize,
    protocol: Protocol,
    model: Model,
    protection: Protection,
    link_bandwidth: u32,
    kind: WorkloadKind,
    transactions_per_thread: u64,
    seed: u64,
    perturbation: u64,
    fault: Option<FaultPlan>,
    storm: Vec<FaultPlan>,
    ber: SafetyNetConfig,
    recovery: Option<RecoveryPolicy>,
    watchdog_cycles: u64,
    max_cycles: u64,
    vc_words: usize,
    membar_injection_period: u64,
    sorter_capacity: usize,
    record_commits: bool,
    obs_capacity: usize,
    kernel: KernelMode,
    checkpoint: CheckpointMode,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            nodes: 8,
            protocol: Protocol::Directory,
            model: Model::Tso,
            protection: Protection::FULL,
            link_bandwidth: 2,
            kind: WorkloadKind::Oltp,
            transactions_per_thread: 32,
            seed: 1,
            perturbation: 1,
            fault: None,
            storm: Vec::new(),
            ber: SafetyNetConfig::default(),
            recovery: None,
            watchdog_cycles: 200_000,
            max_cycles: 50_000_000,
            vc_words: 32,
            membar_injection_period: 100_000,
            sorter_capacity: 256,
            record_commits: false,
            obs_capacity: 0,
            kernel: KernelMode::default(),
            checkpoint: CheckpointMode::default(),
        }
    }
}

impl SystemBuilder {
    /// Starts from the paper's 8-node directory TSO configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node count (Figure 9 sweeps 1–8).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the coherence protocol.
    pub fn protocol(mut self, p: Protocol) -> Self {
        self.protocol = p;
        self
    }

    /// Sets the consistency model.
    pub fn model(mut self, m: Model) -> Self {
        self.model = m;
        self
    }

    /// Enables/disables all of DVMC + BER at once (common case).
    pub fn dvmc(mut self, on: bool) -> Self {
        self.protection = if on {
            Protection::FULL
        } else {
            Protection::BASE
        };
        self
    }

    /// Fine-grained protection selection (Figure 5 components).
    pub fn protection(mut self, p: Protection) -> Self {
        self.protection = p;
        self
    }

    /// Sets the torus link bandwidth in bytes/cycle (Figure 8).
    pub fn link_bandwidth(mut self, b: u32) -> Self {
        self.link_bandwidth = b;
        self
    }

    /// Selects the workload and per-thread transaction count.
    pub fn workload(mut self, kind: WorkloadKind, transactions_per_thread: u64) -> Self {
        self.kind = kind;
        self.transactions_per_thread = transactions_per_thread;
        self
    }

    /// Sets the base seed (program structure and, unless overridden with
    /// [`perturbation`](Self::perturbation), the timing jitter).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self.perturbation = s;
        self
    }

    /// Sets the timing-perturbation seed independently of the program
    /// seed (§5 methodology).
    pub fn perturbation(mut self, p: u64) -> Self {
        self.perturbation = p;
        self
    }

    /// Schedules a fault injection.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Schedules a whole fault storm (soak runs): every plan is injected
    /// in schedule order, in addition to any single
    /// [`fault`](Self::fault).
    pub fn storm(mut self, plans: Vec<FaultPlan>) -> Self {
        self.storm = plans;
        self
    }

    /// Overrides the SafetyNet parameters (checkpoint cadence, validation
    /// latency, log depth).
    pub fn ber_config(mut self, cfg: SafetyNetConfig) -> Self {
        self.ber = cfg;
        self
    }

    /// Arms end-to-end recovery: on checker detection (or watchdog hang)
    /// the system rolls back to the newest validated pre-error checkpoint
    /// and replays, escalating per `policy`. Requires BER protection.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Overrides the hang watchdog threshold.
    pub fn watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = cycles;
        self
    }

    /// Overrides the hard cycle limit.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Overrides the verification-cache capacity in words (ablations).
    pub fn vc_words(mut self, words: usize) -> Self {
        self.vc_words = words;
        self
    }

    /// Overrides the artificial-membar injection period (ablations).
    pub fn membar_injection_period(mut self, period: u64) -> Self {
        self.membar_injection_period = period;
        self
    }

    /// Overrides the epoch-sorter capacity (ablations).
    pub fn sorter_capacity(mut self, capacity: usize) -> Self {
        self.sorter_capacity = capacity;
        self
    }

    /// Records every committed operation per core (litmus harness).
    pub fn record_commits(mut self, on: bool) -> Self {
        self.record_commits = on;
        self
    }

    /// Attaches bounded event rings of `capacity` events to every checker
    /// (structured tracing, per-checker metrics, and violation forensics);
    /// `0` (the default) keeps observability disabled.
    pub fn obs(mut self, capacity: usize) -> Self {
        self.obs_capacity = capacity;
        self
    }

    /// Selects how the simulation loop advances time (the event-scheduled
    /// kernel is the default; `Legacy` is the every-cycle reference).
    pub fn kernel(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// Selects how BER checkpoints capture machine state (log-based
    /// incremental deltas by default; `Snapshot` deep-clones the whole
    /// machine every interval).
    pub fn checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.checkpoint = mode;
        self
    }

    /// The validated [`SystemConfig`] this builder describes, without
    /// building the system — campaign sweeps expand specs into configs
    /// first and construct systems later, on worker threads.
    pub fn into_config(self) -> Result<SystemConfig, ConfigError> {
        let cfg = SystemConfig {
            nodes: self.nodes,
            protocol: self.protocol,
            model: self.model,
            protection: self.protection,
            link_bandwidth: self.link_bandwidth,
            workload: WorkloadParams {
                kind: self.kind,
                threads: self.nodes,
                transactions_per_thread: self.transactions_per_thread,
                seed: self.seed,
                perturbation: self.perturbation,
                model: self.model,
            },
            fault: self.fault,
            storm: self.storm,
            ber: self.ber,
            recovery: self.recovery,
            watchdog_cycles: self.watchdog_cycles,
            max_cycles: self.max_cycles,
            vc_words: self.vc_words,
            membar_injection_period: self.membar_injection_period,
            sorter_capacity: self.sorter_capacity,
            record_commits: self.record_commits,
            obs_capacity: self.obs_capacity,
            kernel: self.kernel,
            checkpoint: self.checkpoint,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Builds the system, refusing invalid configurations (e.g. a node
    /// count the 8-bit [`dvmc_types::NodeId`] cannot address, which
    /// earlier versions truncated silently).
    pub fn try_build(self) -> Result<crate::System, ConfigError> {
        Ok(crate::System::new(self.into_config()?))
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use
    /// [`try_build`](Self::try_build) to handle the error instead.
    pub fn build(self) -> crate::System {
        self.try_build().unwrap_or_else(|e| panic!("invalid system configuration: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_labels() {
        assert_eq!(Protection::BASE.label(), "Base");
        assert_eq!(Protection::SN.label(), "SN");
        assert_eq!(Protection::SN_DVCC.label(), "SN+DVCC");
        assert_eq!(Protection::SN_DVUO.label(), "SN+DVUO");
        assert_eq!(Protection::FULL.label(), "DVMC");
    }

    #[test]
    fn builder_threads_follow_nodes() {
        let sys = SystemBuilder::new().nodes(4).build();
        assert_eq!(sys.config().workload.threads, 4);
    }

    #[test]
    fn node_counts_are_validated_not_truncated() {
        assert_eq!(
            SystemBuilder::new().nodes(0).try_build().err(),
            Some(ConfigError::NoNodes)
        );
        assert_eq!(
            SystemBuilder::new().nodes(300).try_build().err(),
            Some(ConfigError::TooManyNodes { nodes: 300 })
        );
        // 256 would make `nodes as u8` arithmetic wrap even though the
        // largest index still fits; the cap is u8::MAX.
        assert!(SystemBuilder::new().nodes(256).try_build().is_err());
        assert!(SystemBuilder::new().nodes(255).into_config().is_ok());
        let msg = ConfigError::TooManyNodes { nodes: 300 }.to_string();
        assert!(msg.contains("300"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid system configuration")]
    fn build_panics_instead_of_wrapping() {
        let _ = SystemBuilder::new().nodes(1000).build();
    }

    #[test]
    fn recovery_requires_ber_and_a_valid_safety_net() {
        assert_eq!(
            SystemBuilder::new()
                .protection(Protection::BASE)
                .recovery(RecoveryPolicy::default())
                .into_config()
                .err(),
            Some(ConfigError::RecoveryWithoutBer)
        );
        let bad = SafetyNetConfig {
            checkpoint_interval: 0,
            ..SafetyNetConfig::default()
        };
        assert_eq!(
            SystemBuilder::new().ber_config(bad).into_config().err(),
            Some(ConfigError::Ber(BerConfigError::ZeroInterval))
        );
        // A Base config never consults the BER parameters, so an invalid
        // SafetyNet is irrelevant there.
        assert!(SystemBuilder::new()
            .protection(Protection::BASE)
            .ber_config(bad)
            .into_config()
            .is_ok());
        assert!(SystemBuilder::new()
            .recovery(RecoveryPolicy::default())
            .into_config()
            .is_ok());
    }

    #[test]
    fn cluster_config_inherits_verification() {
        let b = SystemBuilder::new().protection(Protection::SN_DVUO);
        let sys = b.build();
        assert!(!sys.config().cluster_config().node.verify);
        assert!(sys.config().core_config().dvmc);
    }
}
