//! The full system: cores + coherent memory system + checkers + BER +
//! fault injection, advanced cycle by cycle.

use crate::checkpoint::{Delta, MachineCheckpoint, Misc};
use crate::config::{CheckpointMode, KernelMode, SystemConfig};
use crate::report::{
    percentile, CheckpointStats, Detection, EpisodeReport, RecoveryOutcome, RecoveryReport,
    RunReport, ServiceReport, ServiceStop, WindowSnapshot,
};
use dvmc_ber::{Checkpoint, SafetyNet};
use dvmc_coherence::Cluster;
use dvmc_consistency::Model;
use dvmc_core::{
    CheckerEvent, CoherenceViolation, EventSink, MetricsWindow, ObsMetrics, ObsRing, TimedEvent,
    Violation, ViolationReport,
};
use dvmc_faults::{Fault, FaultPlan};
use dvmc_pipeline::Core;
use dvmc_types::rng::{det_rng, derive_seed, DetRng};
use dvmc_types::{Cycle, NodeId};
use dvmc_workloads::spec::build_streams;
use rand::Rng;
use std::collections::VecDeque;

/// Everything a rollback must restore: the architectural and
/// microarchitectural state of every core (ROBs, write buffers, checkers,
/// instruction streams), the whole memory system (caches, directories,
/// in-flight interconnect traffic, the cluster clock), the
/// fault-injection RNG, and the watchdog's progress clocks. Whole-machine
/// checkpoints ([`crate::config::CheckpointMode::Snapshot`]) carry one of
/// these per interval; the delta log keeps one as its *base* image.
#[derive(Clone)]
pub(crate) struct Snapshot {
    pub(crate) cores: Vec<Core>,
    pub(crate) cluster: Cluster,
    pub(crate) rng: DetRng,
    pub(crate) progress: Vec<(u64, Cycle)>,
}

impl Snapshot {
    /// Approximate serialized size, in bytes (checkpoint accounting).
    pub(crate) fn approx_bytes(&self) -> u64 {
        self.cores.iter().map(Core::approx_state_bytes).sum::<u64>()
            + self.cluster.approx_state_bytes()
            + (std::mem::size_of::<DetRng>() + self.progress.len() * 16) as u64
    }
}

/// A complete simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    cluster: Cluster,
    /// Checkpoint log; payloads are [`MachineCheckpoint::Unarmed`] when
    /// recovery is off (the captures are not free, and the perf
    /// experiments model BER timing without them).
    ber: Option<SafetyNet<MachineCheckpoint>>,
    /// Delta-log mode: the base image the oldest retained delta applies
    /// on top of. `None` in whole-snapshot mode or when recovery is off.
    base: Option<Box<Snapshot>>,
    /// Delta-log mode: the capture cycle of each core image currently in
    /// the base (rollback undo-replays idle cores forward from here).
    base_core_at: Vec<Cycle>,
    /// Which cores may have mutated since the last delta capture
    /// (conservative, like the cluster's dirty-part flags).
    core_dirty: Vec<bool>,
    /// Cycles actually simulated by [`tick`](Self::tick).
    ticks_executed: u64,
    /// Quiescent cycles skipped by the event-scheduled kernel.
    ticks_skipped: u64,
    /// Checkpoint/rollback cost counters.
    ckpt_stats: CheckpointStats,
    rng: DetRng,
    violations: Vec<Violation>,
    fault_injected_at: Option<Cycle>,
    fault_done: bool,
    /// Per-core (retired count, last progress cycle) for the hang watchdog.
    progress: Vec<(u64, Cycle)>,
    hung: bool,
    /// The node whose core reported the run's first violation, for
    /// forensic attribution (per-processor violations don't name their
    /// node; coherence violations do).
    first_violation_node: Option<usize>,
    /// Rollback/replay attempts performed so far.
    recovery_attempts: u32,
    /// Retry escalations (checkpoint-interval widenings).
    recovery_escalations: u32,
    /// The first detection, preserved across rollbacks (recovery rewinds
    /// the live evidence).
    recovery_detection: Option<Detection>,
    /// Forensics of the first detection, captured before restore rewound
    /// the event rings.
    recovery_forensics: Option<ViolationReport>,
    /// The cycle of the checkpoint the last rollback restored.
    recovery_checkpoint: Cycle,
    /// Recovery gave up (retries exhausted or the error escaped the
    /// checkpoint window).
    unrecoverable: bool,
    /// Event ring for recovery orchestration; deliberately *outside* the
    /// snapshots so a rollback cannot erase recovery history. Merged into
    /// node 0's observability (BER coordination is rooted there).
    recovery_ring: Option<ObsRing>,
    /// Faults not yet injected, schedule order (`cfg.fault` plus the
    /// storm, sorted by time). Only the front plan attempts injection
    /// each cycle, so single-fault configurations draw the identical RNG
    /// sequence they always did. Deliberately outside the snapshots:
    /// rollback must not resurrect already-injected transients.
    pending_faults: VecDeque<FaultPlan>,
    /// Injected faults whose consequences may still be latent:
    /// `(plan, injected_at)`. Drained on rollback (the restore squashes
    /// their effects) or aged out as masked once they outlive the full
    /// SafetyNet window without a detection.
    outstanding: Vec<(FaultPlan, Cycle)>,
    /// The most recently injected plan (detection attribution fallback).
    last_injected: Option<FaultPlan>,
    /// Faults injected over the whole run.
    total_injected: u64,
    /// Outstanding faults that aged out architecturally masked.
    masked: u64,
    /// Rollback/replay attempts spent on the *current* episode; the
    /// retry cap and escalation key off this, so a soak run's budget
    /// resets per episode. Equal to `recovery_attempts` in single-fault
    /// runs (one episode).
    episode_attempts: u32,
    /// The open recovery episode, if any (service mode).
    episode: Option<EpisodeState>,
    /// Closed episodes, in order of first injection.
    episodes: Vec<EpisodeReport>,
    /// Streaming-window bookkeeping when service mode is armed.
    service: Option<ServiceState>,
    /// Deepest rollback since the last window snapshot.
    window_rollback_depth: Cycle,
}

/// The open recovery episode: from a burst's first injection to the
/// machine running clean again.
struct EpisodeState {
    faults: Vec<Fault>,
    injected_at: Cycle,
    detected_at: Option<Cycle>,
    attempts: u32,
    rollback_depth: Cycle,
    /// The (pre-rollback) cycle of the latest detection; once the replay
    /// runs past it again without re-manifesting, the episode is clean.
    clean_after: Cycle,
}

/// Window bookkeeping for service mode: last-seen watermarks for every
/// delta the streaming snapshots report.
struct ServiceState {
    window: Cycle,
    next_boundary: Cycle,
    metrics_window: MetricsWindow,
    last_retired: u64,
    last_requests: u64,
    last_injected: u64,
    last_masked: u64,
    last_episodes: usize,
    last_retries: u32,
    windows: Vec<WindowSnapshot>,
    stopped: Option<ServiceStop>,
}

/// `NodeId` for node index `i`, under the `System` invariant that
/// `cfg.nodes <= u8::MAX` ([`SystemConfig::validate`] enforces it at
/// construction, so the cast can no longer truncate).
#[inline]
fn nid(i: usize) -> NodeId {
    debug_assert!(i <= u8::MAX as usize, "node index {i} exceeds NodeId range");
    NodeId(i as u8)
}

impl System {
    /// Builds the system from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] — use
    /// [`crate::SystemBuilder::try_build`] to handle the error instead.
    pub fn new(cfg: SystemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system configuration: {e}");
        }
        let mut cluster = Cluster::new(cfg.cluster_config());
        let core_cfg = cfg.core_config();
        let streams = build_streams(&cfg.workload);
        let mut cores: Vec<Core> = streams
            .into_iter()
            .map(|s| Core::new(core_cfg, s))
            .collect();
        if cfg.obs_capacity > 0 {
            for core in &mut cores {
                core.enable_obs(cfg.obs_capacity);
            }
            cluster.enable_obs(cfg.obs_capacity);
        }
        let recovery_ring = (cfg.obs_capacity > 0 && cfg.recovery.is_some())
            .then(|| ObsRing::new(cfg.obs_capacity));
        // One injection schedule: the single fault (if any) plus the
        // storm, time-sorted (stable, so a single fault keeps its place
        // on ties).
        let mut pending: Vec<FaultPlan> = cfg.fault.into_iter().chain(cfg.storm.iter().copied()).collect();
        pending.sort_by_key(|p| p.at_cycle);
        let pending_faults: VecDeque<FaultPlan> = pending.into();
        let nodes = cfg.nodes;
        let mut sys = System {
            cores,
            cluster,
            ber: None,
            base: None,
            base_core_at: vec![0; nodes],
            core_dirty: vec![true; nodes],
            ticks_executed: 0,
            ticks_skipped: 0,
            ckpt_stats: CheckpointStats::default(),
            rng: det_rng(derive_seed(cfg.workload.seed, 0xFA17)),
            violations: Vec::new(),
            fault_injected_at: None,
            fault_done: pending_faults.is_empty(),
            pending_faults,
            outstanding: Vec::new(),
            last_injected: None,
            total_injected: 0,
            masked: 0,
            episode_attempts: 0,
            episode: None,
            episodes: Vec::new(),
            service: None,
            window_rollback_depth: 0,
            progress: vec![(0, 0); cfg.nodes],
            hung: false,
            first_violation_node: None,
            recovery_attempts: 0,
            recovery_escalations: 0,
            recovery_detection: None,
            recovery_forensics: None,
            recovery_checkpoint: 0,
            unrecoverable: false,
            recovery_ring,
            cfg,
        };
        if sys.cfg.protection.ber {
            // The initial time-0 checkpoint captures the pristine system
            // when recovery is armed, so even an error in the very first
            // interval has a restore point. In delta-log mode the pristine
            // machine becomes the base image and entry 0 is an empty delta
            // over it.
            let initial = match (sys.cfg.recovery.is_some(), sys.cfg.checkpoint) {
                (false, _) => MachineCheckpoint::Unarmed,
                (true, CheckpointMode::Snapshot) => {
                    MachineCheckpoint::Whole(Box::new(sys.snapshot()))
                }
                (true, CheckpointMode::DeltaLog) => {
                    sys.base = Some(Box::new(sys.snapshot()));
                    sys.cluster.clear_dirty();
                    sys.core_dirty.fill(false);
                    MachineCheckpoint::Delta(Box::new(Delta::empty(sys.misc_image())))
                }
            };
            sys.ber = Some(
                SafetyNet::with_initial(sys.cfg.ber, initial)
                    .expect("SystemConfig::validate vetted the BER config"),
            );
        }
        sys
    }

    /// The always-captured miscellaneous delta part: cheap state that
    /// mutates nearly every cycle, so dirty-tracking it would be pure
    /// overhead.
    fn misc_image(&self) -> Misc {
        Misc {
            rng: self.rng.clone(),
            progress: self.progress.clone(),
            checker_bytes: self.cluster.checker_bytes(),
            ber_bytes: self.cluster.ber_bytes(),
        }
    }

    /// Deep-copies the rollback-relevant machine state.
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            cores: self.cores.clone(),
            cluster: self.cluster.clone(),
            rng: self.rng.clone(),
            progress: self.progress.clone(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.cluster.now()
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        let now = self.cluster.now();
        self.ticks_executed += 1;
        // BER checkpointing and its coordination traffic. Runs *before*
        // fault injection so a checkpoint taken the cycle the fault lands
        // never embeds it (`recovery_point` admits checkpoints with
        // `taken_at <= error_time`; the reorder is behaviourally neutral
        // otherwise — the injection RNG only advances once the fault is
        // due, and BER traffic is excluded from network faults). The
        // coordination bytes are sent inside the capture closure so the
        // checkpoint includes them and a restored run resumes exactly
        // after the checkpoint.
        if let Some(mut ber) = self.ber.take() {
            let bytes = ber.config().coordination_bytes;
            let nodes = self.cfg.nodes;
            let reclaimed = ber.tick_with_reclaimed(now, || {
                for i in 1..nodes {
                    self.cluster.send_ber(nid(i), NodeId(0), bytes);
                    self.cluster.send_ber(NodeId(0), nid(i), bytes);
                }
                self.checkpoint_payload()
            });
            self.ber = Some(ber);
            self.fold_reclaimed(reclaimed);
        }
        self.maybe_inject_fault(now);
        // Cores interact with their caches. Invalidations are noted
        // before responses are delivered: a response and the invalidation
        // that staled it can land in the same cycle, and the speculation
        // window must close first (§4.1).
        for (i, core) in self.cores.iter_mut().enumerate() {
            let id = nid(i);
            let inv = self.cluster.drain_invalidated(id);
            if !inv.is_empty() {
                self.core_dirty[i] = true;
            }
            core.note_invalidations(&inv);
            while let Some(resp) = self.cluster.pop_resp(id) {
                self.core_dirty[i] = true;
                core.deliver(resp);
            }
            if !core.is_inert_at(now) {
                self.core_dirty[i] = true;
            }
            for req in core.tick(now) {
                self.cluster.submit(id, req);
            }
            let drained = core.drain_violations();
            if !drained.is_empty() && self.violations.is_empty() {
                self.first_violation_node.get_or_insert(i);
            }
            self.violations.extend(drained);
        }
        // The memory system advances.
        self.cluster.tick();
        self.violations.extend(self.cluster.drain_violations());
        // Per-core hang watchdog (real systems detect lost requests with
        // per-transaction timeouts; a core that stops retiring while not
        // finished is hung even if its peers still make progress).
        for (i, core) in self.cores.iter().enumerate() {
            let retired = core.retired_ops();
            if retired != self.progress[i].0 || core.is_done() {
                self.progress[i] = (retired, now);
            } else if now - self.progress[i].1 > self.cfg.watchdog_cycles {
                self.hung = true;
            }
        }
    }

    /// Builds this interval's checkpoint payload. Called from inside the
    /// BER capture closure, after the coordination traffic was sent (so
    /// the captured network includes it, exactly like the original
    /// whole-snapshot scheme).
    fn checkpoint_payload(&mut self) -> MachineCheckpoint {
        if self.cfg.recovery.is_none() {
            return MachineCheckpoint::Unarmed;
        }
        self.ckpt_stats.snapshots_taken += 1;
        let payload = match self.cfg.checkpoint {
            CheckpointMode::Snapshot => MachineCheckpoint::Whole(Box::new(self.snapshot())),
            CheckpointMode::DeltaLog => MachineCheckpoint::Delta(Box::new(self.capture_delta())),
        };
        self.ckpt_stats.bytes_logged += payload.approx_bytes();
        self.ckpt_stats.parts_captured += payload.parts();
        payload
    }

    /// Captures every part dirtied since the previous capture (plus the
    /// always-captured misc record) and clears the dirty flags.
    fn capture_delta(&mut self) -> Delta {
        let dirty = self.cluster.dirty_parts();
        let mut delta = Delta::empty(self.misc_image());
        for i in 0..self.cfg.nodes {
            if self.core_dirty[i] {
                delta.cores.push((i, self.cores[i].clone()));
            }
            if dirty.nodes[i] {
                delta.nodes.push((i, self.cluster.node_image(nid(i))));
            }
            if dirty.homes[i] {
                delta.home_ctrls.push((i, self.cluster.home_ctrl_image(nid(i))));
            }
            if dirty.home_mems[i] {
                delta.home_mems.push((i, self.cluster.home_mem_image(nid(i))));
            }
        }
        if dirty.data_net {
            delta.data_net = Some(self.cluster.data_net_image());
        }
        if dirty.addr_net {
            delta.addr_net = Some(self.cluster.addr_net_image());
        }
        self.cluster.clear_dirty();
        self.core_dirty.fill(false);
        delta
    }

    /// Folds checkpoints the log just evicted into the delta-log base, so
    /// the base always reflects the machine at the oldest retained entry's
    /// predecessor. Evictions arrive oldest-first.
    fn fold_reclaimed(&mut self, reclaimed: Vec<Checkpoint<MachineCheckpoint>>) {
        for cp in reclaimed {
            if let MachineCheckpoint::Delta(delta) = cp.state {
                let base = self.base.as_mut().expect("delta log always has a base");
                delta.fold_into(base, &mut self.base_core_at, cp.taken_at);
                self.ckpt_stats.deltas_folded += 1;
            }
        }
    }

    /// Drains each core's commit log (one [`CommitRecord`] per committed
    /// memory op). Empty unless the configuration set `record_commits`;
    /// used by the litmus conformance harness to observe the values loads
    /// actually returned, and by the offline consistency oracle.
    ///
    /// [`CommitRecord`]: dvmc_consistency::CommitRecord
    pub fn commit_logs(&mut self) -> Vec<Vec<dvmc_consistency::CommitRecord>> {
        self.core_dirty.fill(true);
        self.cores.iter_mut().map(Core::take_commit_log).collect()
    }

    /// Debug helper: per-core retired counts plus hang flag.
    pub fn report_peek(&self) -> (Vec<u64>, bool) {
        (
            self.cores.iter().map(Core::retired_ops).collect(),
            self.hung,
        )
    }

    /// Debug helper: renders every core and cache controller, followed —
    /// when observability is enabled — by each node's checker metrics and
    /// its retained event trace.
    pub fn dump(&mut self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for i in 0..self.cfg.nodes {
            let _ = writeln!(out, "core{i}: {}", self.cores[i].dump());
            let _ = writeln!(out, "node{i}: {}", self.cluster.node_mut(nid(i)).dump());
        }
        if self.cfg.obs_capacity > 0 {
            for i in 0..self.cfg.nodes {
                let m = self.node_obs_metrics(i);
                let _ = writeln!(
                    out,
                    "obs{i}: events={} vc={}a/{}d replay={}hit/{}read maxop={} \
                     membar={} epoch={}o/{}c scrub={} inform={}q/{}r crc={} hwm={} \
                     rec={}s/{}c/{}e",
                    m.events,
                    m.vc_allocs,
                    m.vc_deallocs,
                    m.replay_vc_hits,
                    m.replay_cache_reads,
                    m.max_op_updates,
                    m.membar_checks,
                    m.epoch_opens,
                    m.epoch_closes,
                    m.scrubs,
                    m.informs_enqueued,
                    m.informs_reordered,
                    m.crc_checks,
                    m.sorter_occupancy_hwm,
                    m.recoveries_started,
                    m.recoveries_completed,
                    m.recovery_escalations,
                );
                for ev in self.node_obs_trace(i) {
                    let _ = writeln!(out, "  {ev}");
                }
            }
        }
        let k = self.kernel_stats();
        let c = self.ckpt_stats;
        let _ = writeln!(
            out,
            "kernel: executed={} skipped={} | checkpoints: taken={} bytes={} \
             folded={} rollbacks={} parts_restored={} undo_replay={}",
            k.0,
            k.1,
            c.snapshots_taken,
            c.bytes_logged,
            c.deltas_folded,
            c.rollbacks,
            c.parts_restored,
            c.undo_replay_cycles,
        );
        out
    }

    /// Merged observability metrics of node `i`'s checkers (zeroed when
    /// observability is disabled).
    fn node_obs_metrics(&self, i: usize) -> ObsMetrics {
        let mut m = ObsMetrics::default();
        for ring in self.cores[i].obs_rings() {
            m.merge(&ring.metrics());
        }
        for ring in self.cluster.obs_rings(nid(i)) {
            m.merge(&ring.metrics());
        }
        if i == 0 {
            // Recovery orchestration is globally coordinated; like BER
            // traffic, its events are rooted at node 0.
            if let Some(ring) = self.recovery_ring.as_ref() {
                m.merge(&ring.metrics());
            }
        }
        m
    }

    /// The retained events of node `i`'s checkers, merged across rings,
    /// sorted by cycle, and capped at the configured ring capacity.
    fn node_obs_trace(&self, i: usize) -> Vec<TimedEvent> {
        let mut trace: Vec<TimedEvent> = self.cores[i]
            .obs_rings()
            .into_iter()
            .chain(self.cluster.obs_rings(nid(i)))
            .flat_map(|ring| ring.events().copied())
            .collect();
        if i == 0 {
            if let Some(ring) = self.recovery_ring.as_ref() {
                trace.extend(ring.events().copied());
            }
        }
        trace.sort_by_key(|e| e.cycle);
        let skip = trace.len().saturating_sub(self.cfg.obs_capacity);
        trace.drain(..skip);
        trace
    }

    /// Arms a network fault targeting coherence-protocol messages (checker
    /// and BER traffic are excluded: losing them costs detection coverage
    /// or a false positive, not correctness — §6.1 injects protocol
    /// errors).
    fn arm_net_fault(&mut self, fault: dvmc_interconnect::NetFault) {
        use dvmc_coherence::Msg;
        self.cluster.data_net_mut().arm_fault_filtered(fault, |m: &Msg| {
            !matches!(m, Msg::Epoch(_) | Msg::Ber { .. })
        });
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    /// Whether any fault was or will be injected this run.
    fn fault_scheduled(&self) -> bool {
        self.cfg.fault.is_some() || !self.cfg.storm.is_empty()
    }

    // ----- event-scheduled kernel (DESIGN.md §14) -------------------------

    /// The earliest cycle at or after `now` at which the machine can do
    /// observable work or a post-tick check can fire, or `None` when
    /// nothing will ever happen again. Every candidate is conservative
    /// (may be earlier than the real next event, never later), so the
    /// scheduler stays exact: a pinned cycle that turns out quiet simply
    /// ticks once for nothing.
    ///
    /// The run loops check their conditions *after* each tick, at
    /// `tick-cycle + 1`; the pins below are stated in tick cycles, hence
    /// the off-by-ones (e.g. an age-out that fires at post-tick time
    /// `t + window + 1` needs tick cycle `t + window` executed).
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut pin = |c: Cycle| {
            let c = c.max(now);
            best = Some(best.map_or(c, |b: Cycle| b.min(c)));
        };
        for core in &self.cores {
            if let Some(t) = core.next_event_at(now) {
                pin(t);
            }
        }
        // In-flight coherence traffic keeps every cycle busy.
        if !self.cluster.is_quiescent() {
            pin(now);
        }
        // A queued epoch sorter drains against directory logical time,
        // which advances with the wall clock, so pin the (conservatively
        // estimated) cycle its watermark first overtakes the oldest queued
        // start; under snooping, logical time only moves with
        // address-network traffic (already pinned via quiescence).
        if let Some(t) = self.cluster.next_sorter_drain_at(now) {
            pin(t);
        }
        // Periodic checker scrubs: CET every `scrub_period` cycles, MET
        // every 2× that — pinning each CET boundary covers both.
        pin(now.next_multiple_of(self.cluster.scrub_period().max(1)));
        // The BER checkpoint cadence.
        if let Some(ber) = &self.ber {
            pin(ber.next_checkpoint_at());
        }
        // The next scheduled fault. A due-but-unsatisfied plan retries
        // every cycle (and draws the RNG each attempt), so it pins `now`.
        if let Some(front) = self.pending_faults.front() {
            pin(front.at_cycle);
        }
        // Per-core hang watchdogs: tick() flags a hang at executed cycle
        // `last_progress + watchdog + 1` (its check uses the pre-increment
        // clock).
        for (i, core) in self.cores.iter().enumerate() {
            if !core.is_done() {
                pin(self.progress[i].1 + self.cfg.watchdog_cycles + 1);
            }
        }
        // A detected episode closes after ticking its clean-past cycle;
        // once `now` passes it, every cycle is a close candidate.
        if let Some(ep) = &self.episode {
            if ep.detected_at.is_some() {
                pin(ep.clean_after);
            }
        }
        // Outstanding transients age out as masked at `t + window`.
        if self.outstanding.iter().any(|(p, _)| p.fault.is_transient()) {
            let window = self.ber.as_ref().map_or_else(
                || self.cfg.ber.recovery_window(),
                |b| b.config().recovery_window(),
            );
            for &(p, t) in &self.outstanding {
                if p.fault.is_transient() {
                    pin(t.saturating_add(window));
                }
            }
        }
        // Service-window boundaries emit at post-tick `next_boundary`.
        if let Some(svc) = &self.service {
            pin(svc.next_boundary.saturating_sub(1));
        }
        best
    }

    /// Event-scheduled kernel: jumps from the current cycle to the next
    /// event (capped at `cap`), applying exactly the state changes the
    /// legacy kernel's quiescent ticks would have made — a clock catch-up
    /// on every core and an idle re-stamp of the memory system. No-op
    /// under [`KernelMode::Legacy`] or when something can happen now.
    fn advance_quiescent(&mut self, cap: Cycle) {
        if self.cfg.kernel != KernelMode::Event {
            return;
        }
        let now = self.now();
        if now >= cap {
            return;
        }
        let target = self.next_event_at(now).map_or(cap, |t| t.min(cap));
        if target <= now {
            return;
        }
        let k = target - now;
        for (i, core) in self.cores.iter_mut().enumerate() {
            debug_assert!(core.is_inert_at(now), "skipping a non-inert core");
            core.catch_up(k);
            if core.is_done() {
                // The legacy loop restamps a finished core's progress
                // clock every tick; the last skipped cycle is target - 1.
                self.progress[i] = (core.retired_ops(), target - 1);
            }
        }
        self.cluster.advance_to(target);
        self.ticks_skipped += k;
    }

    /// `(executed, skipped)` cycle counts — how much work the
    /// event-scheduled kernel actually did versus jumped over.
    pub fn kernel_stats(&self) -> (u64, u64) {
        (self.ticks_executed, self.ticks_skipped)
    }

    /// Checkpoint/rollback cost counters accumulated so far.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt_stats
    }

    fn maybe_inject_fault(&mut self, now: Cycle) {
        if self.fault_done {
            return;
        }
        // Attempt every *due* plan each tick (the queue is sorted by
        // injection time, so the due plans are a prefix). A plan whose
        // precondition is missing must not block the plans behind it —
        // a storm burst targets independent structures, and e.g. a
        // wb-reorder waiting for two buffered stores can wait a while.
        let mut i = 0;
        while i < self.pending_faults.len() {
            let plan = self.pending_faults[i];
            if now < plan.at_cycle {
                break;
            }
            if self.attempt_inject(plan, now) {
                self.pending_faults.remove(i);
            } else {
                i += 1;
            }
        }
        self.fault_done = self.pending_faults.is_empty();
    }

    /// One injection attempt; `true` when it took. Some faults need state
    /// to exist (a resident line, a WB entry) and are retried every cycle
    /// until it does.
    fn attempt_inject(&mut self, plan: FaultPlan, now: Cycle) -> bool {
        let idx = self.rng.gen::<u64>() as usize;
        let bit = self.rng.gen::<u32>();
        let took = match plan.fault {
            Fault::CacheBitFlip { node } => self
                .cluster
                .node_mut(node)
                .corrupt_l2(idx, bit as usize % 512)
                .is_some(),
            Fault::MemoryBitFlip { node } => self
                .cluster
                .home_mut(node)
                .corrupt_memory(idx, bit as usize % 512)
                .is_some(),
            Fault::DropMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Drop);
                true
            }
            Fault::DuplicateMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Duplicate);
                true
            }
            Fault::MisrouteMessage { to } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Misroute(to));
                true
            }
            Fault::ReorderMessage { delay } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Delay(delay));
                true
            }
            Fault::WbDropStore { node } => self.cores[node.index()].inject_wb_drop(),
            Fault::WbReorderStores { node } => self.cores[node.index()].inject_wb_reorder(),
            Fault::WbCorruptValue { node } => self.cores[node.index()].inject_wb_corrupt(bit),
            Fault::WbAddressFlip { node } => self.cores[node.index()].inject_wb_addr_flip(bit),
            Fault::LsqWrongForward { node } => {
                self.cores[node.index()].arm_lsq_wrong_forward();
                true
            }
            Fault::CacheCtrlBogusUpgrade { node } => self
                .cluster
                .node_mut(node)
                .corrupt_upgrade(idx)
                .is_some(),
            Fault::MemCtrlForgetOwner { node } => self
                .cluster
                .home_mut(node)
                .corrupt_forget_owner(idx)
                .is_some(),
            // A stuck bit injects like a cache data flip; its persistence
            // lives in the recovery path, which re-arms it after rollback.
            Fault::CacheStuckBit { node } => self
                .cluster
                .node_mut(node)
                .corrupt_l2(idx, bit as usize % 512)
                .is_some(),
        };
        if took {
            // Core-targeted faults mutate core state behind the normal
            // tick-path dirty marking.
            if let Fault::WbDropStore { node }
            | Fault::WbReorderStores { node }
            | Fault::WbCorruptValue { node }
            | Fault::WbAddressFlip { node }
            | Fault::LsqWrongForward { node } = plan.fault
            {
                self.core_dirty[node.index()] = true;
            }
            self.fault_injected_at = Some(now);
            self.last_injected = Some(plan);
            self.total_injected += 1;
            self.outstanding.push((plan, now));
            // Open (or extend) the recovery episode: overlapping faults
            // pile into one episode until the machine is clean again.
            match self.episode.as_mut() {
                Some(ep) => ep.faults.push(plan.fault),
                None => {
                    self.episode = Some(EpisodeState {
                        faults: vec![plan.fault],
                        injected_at: now,
                        detected_at: None,
                        attempts: 0,
                        rollback_depth: 0,
                        clean_after: now,
                    });
                }
            }
        }
        took
    }

    /// Runs to completion (all threads finish their transaction quota),
    /// detection (when a fault is scheduled), hang, or the cycle limit.
    ///
    /// With recovery armed, a detection — checker violation or watchdog
    /// hang — triggers rollback to the newest validated pre-error
    /// checkpoint and the run *continues*, replaying from there; only an
    /// unrecoverable verdict (retries exhausted, window escaped) stops it.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunReport {
        let limit = max_cycles.min(self.cfg.max_cycles);
        let fault_scheduled = self.fault_scheduled();
        while self.now() < limit {
            self.tick();
            if fault_scheduled
                && self.fault_injected_at.is_some()
                && (!self.violations.is_empty() || self.hung)
            {
                // Detected, by a checker or by the hang watchdog.
                if self.try_recover() {
                    continue; // rolled back; replay
                }
                break;
            }
            if self.hung || self.all_done() {
                break;
            }
            self.advance_quiescent(limit);
        }
        if self.recovery_attempts > 0
            && !self.unrecoverable
            && self.all_done()
            && self.violations.is_empty()
        {
            if let Some(ring) = self.recovery_ring.as_mut() {
                ring.set_now(self.cluster.now());
                ring.record(CheckerEvent::RecoveryCompleted {
                    attempt: self.recovery_attempts,
                });
            }
        }
        self.report()
    }

    /// Requests a consistency-model switch on every core, applied per
    /// core at its next quiescent point (empty ROB, write buffer, and
    /// outstanding-request table). Idempotent — re-asserting the current
    /// model is a no-op — which matters because a rollback can restore
    /// cores to a pre-switch snapshot: the soak driver re-asserts the
    /// active model at every window boundary so a rolled-back switch is
    /// simply requested again.
    pub fn switch_model(&mut self, model: Model) {
        self.core_dirty.fill(true);
        for core in &mut self.cores {
            core.request_model_switch(model);
        }
    }

    /// All nodes' checker observability metrics, merged.
    pub fn obs_metrics(&self) -> ObsMetrics {
        let mut m = ObsMetrics::default();
        for i in 0..self.cfg.nodes {
            m.merge(&self.node_obs_metrics(i));
        }
        m
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.total_injected
    }

    // ----- service mode (DESIGN.md §13) ----------------------------------

    /// Arms service mode: the run becomes open-ended, with a streaming
    /// [`WindowSnapshot`] emitted every `window` cycles by
    /// [`run_service_until`](Self::run_service_until).
    pub fn arm_service(&mut self, window: Cycle) {
        let window = window.max(1);
        self.service = Some(ServiceState {
            window,
            next_boundary: self.now() + window,
            metrics_window: MetricsWindow::default(),
            last_retired: 0,
            last_requests: 0,
            last_injected: 0,
            last_masked: 0,
            last_episodes: 0,
            last_retries: 0,
            windows: Vec::new(),
            stopped: None,
        });
    }

    /// Runs service-mode ticks until `until` (or a fatal stop), invoking
    /// `on_window` at every window boundary. Detections are recovered
    /// in-line and grouped into episodes; the run only stops early on a
    /// *false violation* (a checker fired with no fault in flight — fatal
    /// for a verification scheme) or an unrecoverable episode. May be
    /// called repeatedly with increasing horizons (e.g. once per
    /// consistency-model segment of a soak schedule).
    ///
    /// # Panics
    ///
    /// Panics unless [`arm_service`](Self::arm_service) was called.
    pub fn run_service_until(
        &mut self,
        until: Cycle,
        on_window: &mut dyn FnMut(&WindowSnapshot),
    ) -> ServiceStop {
        assert!(self.service.is_some(), "arm_service before run_service_until");
        if let Some(stop) = self.service.as_ref().and_then(|s| s.stopped) {
            return stop; // already dead; don't limp on
        }
        let stop = loop {
            if self.now() >= until {
                break ServiceStop::Horizon;
            }
            self.tick();
            let now = self.now();
            self.age_masked(now);
            if !self.violations.is_empty() || self.hung {
                if self.episode.is_none() && self.outstanding.is_empty() {
                    // Nothing in flight to blame: a spontaneous checker
                    // violation is a false positive; a spontaneous hang
                    // has nothing to roll back past.
                    break if self.violations.is_empty() {
                        ServiceStop::Unrecoverable
                    } else {
                        ServiceStop::FalseViolation
                    };
                }
                if !self.try_recover() {
                    self.unrecoverable = true;
                    break ServiceStop::Unrecoverable;
                }
                continue; // rolled back; replay
            }
            self.maybe_close_episode(now);
            self.emit_windows(now, on_window);
            self.advance_quiescent(until);
        };
        if stop != ServiceStop::Horizon {
            if let Some(svc) = self.service.as_mut() {
                svc.stopped = Some(stop);
            }
        }
        stop
    }

    /// Ends service mode: stops injecting, gives an open episode a short
    /// grace period to settle, emits the final (partial) window, and
    /// packages everything into a [`ServiceReport`]. The partial report is
    /// well-formed even after a fatal stop — windows and episodes up to
    /// the stop are all present.
    ///
    /// # Panics
    ///
    /// Panics unless [`arm_service`](Self::arm_service) was called.
    pub fn finish_service(&mut self) -> ServiceReport {
        assert!(self.service.is_some(), "arm_service before finish_service");
        self.pending_faults.clear();
        self.fault_done = true;
        let fatal = self.service.as_ref().and_then(|s| s.stopped).is_some();
        // Grace drain: an episode mid-recovery at the horizon gets up to
        // two watchdog periods to come clean before shutdown.
        if !fatal && self.episode.is_some() {
            let deadline = self.now() + self.cfg.watchdog_cycles.saturating_mul(2);
            while self.episode.is_some() && self.now() < deadline {
                self.tick();
                let now = self.now();
                self.age_masked(now);
                if !self.violations.is_empty() || self.hung {
                    if !self.try_recover() {
                        self.unrecoverable = true;
                        break;
                    }
                    continue;
                }
                self.maybe_close_episode(now);
                self.advance_quiescent(deadline);
            }
        }
        let now = self.now();
        let mut svc = self.service.take().expect("checked above");
        // Final partial window.
        let start = svc.next_boundary - svc.window;
        if now > start {
            let mut snap = self.window_snapshot(&mut svc);
            snap.end = now;
            svc.windows.push(snap);
        }
        // An episode still open at shutdown goes on record unrecovered
        // (or, if never detected, masked-in-progress).
        if let Some(ep) = self.episode.take() {
            self.episodes.push(EpisodeReport {
                faults: ep.faults,
                injected_at: ep.injected_at,
                detected_at: ep.detected_at,
                attempts: ep.attempts,
                rollback_depth: ep.rollback_depth,
                recovered_at: None,
            });
        }
        let stopped = svc.stopped.unwrap_or(ServiceStop::Horizon);
        let report = self.report();
        ServiceReport {
            windows: svc.windows,
            episodes: std::mem::take(&mut self.episodes),
            injected: self.total_injected,
            masked: self.masked,
            stopped,
            report,
        }
    }

    /// Ages outstanding *transient* faults: one that outlives the full
    /// SafetyNet recovery window without any detection is architecturally
    /// masked — even if it *did* manifest later, no checkpoint predating
    /// it would remain, so the mask horizon and the recovery horizon
    /// coincide. Persistent faults never age out: a stuck bit stays
    /// broken, and it must still be on the books when a late organic
    /// detection finally fingers it (otherwise that detection would be
    /// misread as a false violation).
    fn age_masked(&mut self, now: Cycle) {
        if self.outstanding.is_empty() {
            return;
        }
        let window = self.ber.as_ref().map_or_else(
            || self.cfg.ber.recovery_window(),
            |b| b.config().recovery_window(),
        );
        let before = self.outstanding.len();
        self.outstanding
            .retain(|&(p, t)| !p.fault.is_transient() || now.saturating_sub(t) <= window);
        let aged = (before - self.outstanding.len()) as u64;
        if aged == 0 {
            return;
        }
        self.masked += aged;
        // A never-detected episode whose faults all aged out closes as
        // masked.
        if self.outstanding.is_empty() {
            if let Some(ep) = self.episode.as_ref() {
                if ep.detected_at.is_none() && ep.attempts == 0 {
                    let ep = self.episode.take().expect("just checked");
                    self.episodes.push(EpisodeReport {
                        faults: ep.faults,
                        injected_at: ep.injected_at,
                        detected_at: None,
                        attempts: 0,
                        rollback_depth: 0,
                        recovered_at: None,
                    });
                    self.fault_injected_at = None;
                    self.episode_attempts = 0;
                }
            }
        }
    }

    /// Closes the open episode as recovered once the machine has run
    /// clean past the episode's last detection point: no outstanding
    /// faults, no violations, not hung, and the replay has re-passed the
    /// cycle where the error previously manifested. Closing resets the
    /// per-episode retry budget and narrows an escalation-widened
    /// checkpoint cadence back to its configured base.
    fn maybe_close_episode(&mut self, now: Cycle) {
        let ready = self.episode.as_ref().is_some_and(|ep| {
            ep.detected_at.is_some()
                && ep.attempts > 0
                && self.outstanding.is_empty()
                && self.violations.is_empty()
                && !self.hung
                && now > ep.clean_after
        });
        if !ready {
            return;
        }
        let ep = self.episode.take().expect("checked above");
        if let Some(ring) = self.recovery_ring.as_mut() {
            ring.set_now(now);
            ring.record(CheckerEvent::RecoveryCompleted { attempt: ep.attempts });
        }
        self.episodes.push(EpisodeReport {
            faults: ep.faults,
            injected_at: ep.injected_at,
            detected_at: ep.detected_at,
            attempts: ep.attempts,
            rollback_depth: ep.rollback_depth,
            recovered_at: Some(now),
        });
        self.episode_attempts = 0;
        self.fault_injected_at = None;
        if let Some(ber) = self.ber.as_mut() {
            ber.narrow_interval(self.cfg.ber.checkpoint_interval);
        }
    }

    /// Emits every window boundary `now` has crossed. Rollbacks rewind
    /// `now`; already-emitted boundaries stay emitted and the next one
    /// simply waits for the replay to reach it again.
    fn emit_windows(&mut self, now: Cycle, on_window: &mut dyn FnMut(&WindowSnapshot)) {
        let Some(mut svc) = self.service.take() else {
            return;
        };
        while now >= svc.next_boundary {
            let snap = self.window_snapshot(&mut svc);
            on_window(&snap);
            svc.windows.push(snap);
            svc.next_boundary += svc.window;
        }
        self.service = Some(svc);
    }

    /// One window's snapshot: saturating deltas against the previous
    /// watermarks (counters inside rolled-back components can rewind;
    /// see [`MetricsWindow`]).
    fn window_snapshot(&mut self, svc: &mut ServiceState) -> WindowSnapshot {
        let retired: u64 = self.cores.iter().map(Core::retired_ops).sum();
        let requests: u64 = self.cores.iter().map(Core::transactions).sum();
        let closed = &self.episodes[svc.last_episodes.min(self.episodes.len())..];
        let detection: Vec<Cycle> =
            closed.iter().filter_map(EpisodeReport::detection_latency).collect();
        let recovery: Vec<Cycle> =
            closed.iter().filter_map(EpisodeReport::recovery_latency).collect();
        let m = self.obs_metrics();
        let delta = svc.metrics_window.delta(&m);
        // Open-loop queueing delay (arrival -> commit), drained per core.
        let mut delays: Vec<Cycle> = Vec::new();
        for (i, core) in self.cores.iter_mut().enumerate() {
            let d = core.take_queue_delays();
            if !d.is_empty() {
                self.core_dirty[i] = true;
                delays.extend(d);
            }
        }
        let snap = WindowSnapshot {
            start: svc.next_boundary - svc.window,
            end: svc.next_boundary,
            retired_ops: retired.saturating_sub(svc.last_retired),
            requests: requests.saturating_sub(svc.last_requests),
            injected: self.total_injected - svc.last_injected,
            masked: self.masked - svc.last_masked,
            episodes_closed: closed.len() as u64,
            detection_latency_sum: detection.iter().sum(),
            detection_latency_count: detection.len() as u64,
            recovery_latency_sum: recovery.iter().sum(),
            recovery_latency_count: recovery.len() as u64,
            rollback_depth_max: std::mem::take(&mut self.window_rollback_depth),
            retries: u64::from(self.recovery_attempts - svc.last_retries),
            sorter_hwm: delta.sorter_occupancy_hwm,
            informs: delta.informs_enqueued,
            crc_checks: delta.crc_checks,
            epoch_closes: delta.epoch_closes,
            queue_delay_count: delays.len() as u64,
            queue_delay_p50: percentile(&delays, 50).unwrap_or(0),
            queue_delay_p99: percentile(&delays, 99).unwrap_or(0),
        };
        svc.last_retired = retired;
        svc.last_requests = requests;
        svc.last_injected = self.total_injected;
        svc.last_masked = self.masked;
        svc.last_episodes = self.episodes.len();
        svc.last_retries = self.recovery_attempts;
        snap
    }

    /// Attempts rollback/replay after a detection. Returns `true` when
    /// the machine was restored to a pre-error checkpoint and the run
    /// should continue, `false` when recovery is off or gave up (the
    /// caller stops; the report carries the preserved first detection and
    /// its forensics).
    fn try_recover(&mut self) -> bool {
        let Some(policy) = self.cfg.recovery else {
            return false;
        };
        // Roll back past the *earliest* still-outstanding injection: a
        // storm can land a second fault while the first is latent, and a
        // rollback that only clears the newer one replays straight into
        // the older one's corruption. After a rollback drained the
        // outstanding set, a replay re-detection falls back to the
        // episode's first injection time.
        let earliest = self.outstanding.iter().min_by_key(|&&(_, t)| t).copied();
        let Some(injected_at) = earliest.map(|(_, t)| t).or(self.fault_injected_at) else {
            return false;
        };
        let fault = earliest
            .map(|(p, _)| p.fault)
            .or(self.last_injected.map(|p| p.fault))
            .or(self.cfg.fault.map(|p| p.fault));
        let Some(fault) = fault else {
            return false;
        };
        let now = self.cluster.now();
        // Preserve the first detection: rollback rewinds the live
        // evidence, but the report must still attest what was caught and
        // when.
        if self.recovery_detection.is_none() {
            self.recovery_detection = Some(Detection {
                fault,
                injected_at,
                detected_at: now,
                violation: self.violations.first().cloned(),
                recoverable: self
                    .ber
                    .as_ref()
                    .is_some_and(|b| b.recoverable(injected_at, now)),
            });
        }
        if let Some(ep) = self.episode.as_mut() {
            ep.detected_at.get_or_insert(now);
            ep.clean_after = now;
        }
        // Forensics likewise: captured before restore, while the rings
        // still hold the events leading up to the violation.
        if self.cfg.obs_capacity > 0 && self.recovery_forensics.is_none() {
            let node = self.attribute_node();
            self.recovery_forensics = Some(ViolationReport {
                violation: self.violations.first().cloned(),
                trace: self.node_obs_trace(node.index()),
                cycle: now,
                node,
            });
        }
        if self.episode_attempts >= policy.max_retries {
            // Retries exhausted. No restore: the final violations and
            // rings stay in place, so report() renders fresh forensics
            // for the unrecoverable verdict.
            self.unrecoverable = true;
            return false;
        }
        let Some(mut ber) = self.ber.take() else {
            self.unrecoverable = true;
            return false;
        };
        // The reconstruction closure rebuilds the machine directly from
        // the log entries (whole-snapshot restore or delta undo-replay),
        // returning whether the recovery point carried restorable state.
        let rolled = ber.rollback_via(injected_at, now, |entries, idx| {
            self.restore_from(entries, idx)
        });
        self.ber = Some(ber);
        let Some((taken_at, restored)) = rolled else {
            self.unrecoverable = true; // error escaped the checkpoint window
            return false;
        };
        if !restored {
            self.unrecoverable = true; // checkpoint predates recovery arming
            return false;
        }
        self.recovery_attempts += 1;
        self.episode_attempts += 1;
        let attempt = self.episode_attempts;
        let depth = now.saturating_sub(taken_at);
        self.window_rollback_depth = self.window_rollback_depth.max(depth);
        if let Some(ep) = self.episode.as_mut() {
            ep.attempts = attempt;
            ep.rollback_depth = ep.rollback_depth.max(depth);
        }
        if let Some(ring) = self.recovery_ring.as_mut() {
            ring.set_now(now);
            ring.record(CheckerEvent::RecoveryStarted {
                attempt,
                checkpoint: taken_at,
            });
        }
        // A second attempt means the error survived one clean replay:
        // escalate by widening the checkpoint cadence (cheaper
        // checkpoints, wider window) before trying again.
        if attempt > 1 {
            self.recovery_escalations += 1;
            if let Some(ber) = self.ber.as_mut() {
                ber.widen_interval(policy.backoff_factor);
            }
            if let Some(ring) = self.recovery_ring.as_mut() {
                ring.record(CheckerEvent::RecoveryEscalated { attempt });
            }
        }
        // The restore itself already ran inside `rollback_via`; clear the
        // live evidence it squashed.
        self.violations.clear();
        self.hung = false;
        self.first_violation_node = None;
        self.recovery_checkpoint = taken_at;
        // An armed-but-unapplied network fault must not re-trip on replay.
        self.cluster.data_net_mut().disarm_fault();
        // The restore squashed every outstanding fault's effects.
        // Transients are gone for good; persistent defects re-arm at the
        // front of the schedule and will re-manifest during replay (the
        // restored RNG re-injects them identically).
        for (plan, _) in self.outstanding.drain(..).rev() {
            if !plan.fault.is_transient() {
                self.pending_faults.push_front(plan);
            }
        }
        self.fault_done = self.pending_faults.is_empty();
        true
    }

    /// Reconstructs the machine at `entries[idx]` (the recovery point the
    /// log selected). Returns `false` when that checkpoint carries no
    /// restorable state (BER armed without recovery).
    fn restore_from(&mut self, entries: &[Checkpoint<MachineCheckpoint>], idx: usize) -> bool {
        let taken_at = entries[idx].taken_at;
        match &entries[idx].state {
            MachineCheckpoint::Unarmed => return false,
            MachineCheckpoint::Whole(snap) => {
                self.cores = snap.cores.clone();
                self.cluster = snap.cluster.clone();
                self.rng = snap.rng.clone();
                self.progress = snap.progress.clone();
                self.ckpt_stats.parts_restored += 2 * self.cfg.nodes as u64 + 2;
            }
            MachineCheckpoint::Delta(_) => self.restore_from_deltas(entries, idx, taken_at),
        }
        self.ckpt_stats.rollbacks += 1;
        true
    }

    /// The newest delta at or before the recovery point that captured the
    /// part `pick` selects, scanning `log` (entries up to and including
    /// the recovery point) newest-first.
    fn newest_part<'a, T>(
        log: &'a [Checkpoint<MachineCheckpoint>],
        pick: impl Fn(&'a Delta) -> Option<&'a T>,
    ) -> Option<&'a T> {
        log.iter().rev().find_map(|cp| match &cp.state {
            MachineCheckpoint::Delta(d) => pick(d),
            _ => None,
        })
    }

    /// Delta-log rollback: undo-replay reconstruction at `taken_at`.
    ///
    /// The parts that must be restored are those touched after the
    /// recovery point — captured by a younger (poisoned) delta or dirtied
    /// since the newest capture. Each is restored from the newest delta at
    /// or before the recovery point that carries it, falling back to the
    /// base image. Cores are restored unconditionally: a clean idle core
    /// still drains its decode countdown every cycle, so its live value
    /// postdates any image — the image is restored and then caught up
    /// over the provably-inert gap.
    fn restore_from_deltas(
        &mut self,
        entries: &[Checkpoint<MachineCheckpoint>],
        idx: usize,
        taken_at: Cycle,
    ) {
        let n = self.cfg.nodes;
        let mut dirty = self.cluster.dirty_parts();
        for cp in &entries[idx + 1..] {
            if let MachineCheckpoint::Delta(d) = &cp.state {
                for &(i, _) in &d.nodes {
                    dirty.nodes[i] = true;
                }
                for &(i, _) in &d.home_ctrls {
                    dirty.homes[i] = true;
                }
                for &(i, _) in &d.home_mems {
                    dirty.home_mems[i] = true;
                }
                dirty.data_net |= d.data_net.is_some();
                dirty.addr_net |= d.addr_net.is_some();
            }
        }
        let log = &entries[..=idx];
        let base = self.base.take().expect("delta log always has a base");
        // Cores: newest image at or before the recovery point, else base,
        // then catch up over the clean span.
        for i in 0..n {
            let mut image = &base.cores[i];
            let mut image_at = self.base_core_at[i];
            for cp in log.iter().rev() {
                if let MachineCheckpoint::Delta(d) = &cp.state {
                    if let Some((_, c)) = d.cores.iter().find(|&&(j, _)| j == i) {
                        image = c;
                        image_at = cp.taken_at;
                        break;
                    }
                }
            }
            self.cores[i] = image.clone();
            let gap = taken_at.saturating_sub(image_at);
            self.cores[i].catch_up(gap);
            self.ckpt_stats.undo_replay_cycles += gap;
            self.ckpt_stats.parts_restored += 1;
        }
        for i in 0..n {
            if dirty.nodes[i] {
                match Self::newest_part(log, |d| {
                    d.nodes.iter().find(|&&(j, _)| j == i).map(|(_, x)| x)
                }) {
                    Some(img) => self.cluster.restore_node(nid(i), img),
                    None => self.cluster.restore_node(nid(i), &base.cluster.node_image(nid(i))),
                }
                self.ckpt_stats.parts_restored += 1;
            }
            if dirty.homes[i] {
                match Self::newest_part(log, |d| {
                    d.home_ctrls.iter().find(|&&(j, _)| j == i).map(|(_, x)| x)
                }) {
                    Some(img) => self.cluster.restore_home_ctrl(nid(i), img),
                    None => self
                        .cluster
                        .restore_home_ctrl(nid(i), &base.cluster.home_ctrl_image(nid(i))),
                }
                self.ckpt_stats.parts_restored += 1;
            }
            if dirty.home_mems[i] {
                match Self::newest_part(log, |d| {
                    d.home_mems.iter().find(|&&(j, _)| j == i).map(|(_, x)| x)
                }) {
                    Some(img) => self.cluster.restore_home_mem(nid(i), img),
                    None => self
                        .cluster
                        .restore_home_mem(nid(i), &base.cluster.home_mem_image(nid(i))),
                }
                self.ckpt_stats.parts_restored += 1;
            }
        }
        if dirty.data_net {
            match Self::newest_part(log, |d| d.data_net.as_ref()) {
                Some(img) => self.cluster.restore_data_net(img),
                None => self.cluster.restore_data_net(&base.cluster.data_net_image()),
            }
            self.ckpt_stats.parts_restored += 1;
        }
        if dirty.addr_net {
            match Self::newest_part(log, |d| d.addr_net.as_ref()) {
                Some(img) => self.cluster.restore_addr_net(img),
                None => self.cluster.restore_addr_net(&base.cluster.addr_net_image()),
            }
            self.ckpt_stats.parts_restored += 1;
        }
        // Misc rides in every delta; the recovery point's copy is exact.
        if let MachineCheckpoint::Delta(d) = &entries[idx].state {
            self.rng = d.misc.rng.clone();
            self.progress = d.misc.progress.clone();
            self.cluster
                .set_traffic_counters(d.misc.checker_bytes, d.misc.ber_bytes);
        }
        self.base = Some(base);
        // Rewind the cluster clock, then re-stamp every controller the
        // way `advance_to` does for a skipped span (an equal-target
        // advance performs exactly the idle stamp at `taken_at - 1`).
        self.cluster.set_now(taken_at);
        self.cluster.advance_to(taken_at);
        // Everything now matches the checkpoint; captures restart clean.
        self.cluster.clear_dirty();
        self.core_dirty.fill(false);
    }

    /// Bench hook: captures one checkpoint immediately (at the cadence's
    /// next boundary, wherever the clock is) and returns the approximate
    /// bytes it logged. Zero when BER is off or recovery is unarmed.
    pub fn force_checkpoint(&mut self) -> u64 {
        let Some(mut ber) = self.ber.take() else {
            return 0;
        };
        let before = self.ckpt_stats.bytes_logged;
        let at = ber.next_checkpoint_at();
        let bytes = ber.config().coordination_bytes;
        let nodes = self.cfg.nodes;
        let reclaimed = ber.tick_with_reclaimed(at, || {
            for i in 1..nodes {
                self.cluster.send_ber(nid(i), NodeId(0), bytes);
                self.cluster.send_ber(NodeId(0), nid(i), bytes);
            }
            self.checkpoint_payload()
        });
        self.ber = Some(ber);
        self.fold_reclaimed(reclaimed);
        self.ckpt_stats.bytes_logged - before
    }

    /// Bench hook: rolls back to the newest held checkpoint, bypassing
    /// the validation-latency filter, and returns the cycle restored.
    /// `None` when recovery is off or the log is empty. Repeatable: the
    /// recovery point stays in the log.
    pub fn force_rollback(&mut self) -> Option<Cycle> {
        let mut ber = self.ber.take()?;
        let rolled = ber.rollback_via(u64::MAX, u64::MAX, |entries, idx| {
            self.restore_from(entries, idx)
        });
        self.ber = Some(ber);
        match rolled {
            Some((taken_at, true)) => {
                self.violations.clear();
                self.hung = false;
                Some(taken_at)
            }
            _ => None,
        }
    }

    /// The node a detection is attributed to: the violation names one, or
    /// the core that reported first, or the fault's location.
    fn attribute_node(&self) -> NodeId {
        self.violations
            .first()
            .and_then(violation_node)
            .or(self.first_violation_node.map(nid))
            .or(self
                .last_injected
                .or(self.cfg.fault)
                .and_then(|p| p.fault.node()))
            .unwrap_or(NodeId(0))
    }

    /// Assembles the final report (flushes the coherence checker).
    pub fn report(&mut self) -> RunReport {
        let completed = self.all_done();
        // Drain in-flight coherence traffic (informs, acks, writebacks)
        // before the end-of-run audit. Truncated runs (cycle budget hit
        // with cores mid-request) drain too: auditing with epoch messages
        // still in flight makes `finish()` raise spurious SpuriousClose /
        // EpochOverlap / DataPropagation verdicts — closes racing their
        // own unscrubbed opens (ROADMAP 3b). Cores stop issuing, but
        // their pending responses must keep landing or the cluster never
        // goes quiescent (`resp_out` backs up).
        if !self.hung {
            for _ in 0..500_000u64 {
                for (i, core) in self.cores.iter_mut().enumerate() {
                    let id = nid(i);
                    let inv = self.cluster.drain_invalidated(id);
                    core.note_invalidations(&inv);
                    while let Some(resp) = self.cluster.pop_resp(id) {
                        core.deliver(resp);
                    }
                }
                if self.cluster.is_quiescent() {
                    break;
                }
                self.cluster.tick();
            }
            self.violations.extend(self.cluster.drain_violations());
        }
        let now = self.now();
        // End-of-run audit; skipped when a fault already led to a
        // detection or hang, where in-flight state is expectedly
        // inconsistent and the verdict has been decided.
        if !self.fault_scheduled() || (self.violations.is_empty() && !self.hung) {
            self.violations.extend(self.cluster.finish());
        }
        // A hung faulted run takes neither branch above, yet its checkers
        // may already have raised violations that are still sitting in the
        // cluster; drain unconditionally so the verdict sees them
        // (previously they were dropped, demoting checker detections to
        // hang-only detections).
        self.violations.extend(self.cluster.drain_violations());
        let memory_digest = self.cluster.memory_digest();
        // A run that went through recovery reports its *first* detection
        // (rollback rewound the live evidence); otherwise the detection is
        // derived from the final state as before.
        let detection = self.recovery_detection.clone().or(match (self.last_injected.or(self.cfg.fault), self.fault_injected_at) {
            (Some(plan), Some(injected_at)) if !self.violations.is_empty() || self.hung => {
                let recoverable = self
                    .ber
                    .as_ref()
                    .is_some_and(|b| b.recoverable(injected_at, now));
                Some(Detection {
                    fault: plan.fault,
                    injected_at,
                    detected_at: now,
                    violation: self.violations.first().cloned(),
                    recoverable,
                })
            }
            _ => None,
        });
        let recovery = if self.recovery_attempts > 0 || self.unrecoverable {
            Some(RecoveryReport {
                attempts: self.recovery_attempts,
                escalations: self.recovery_escalations,
                checkpoint: self.recovery_checkpoint,
                outcome: if self.unrecoverable {
                    RecoveryOutcome::Unrecoverable
                } else {
                    RecoveryOutcome::Recovered
                },
            })
        } else {
            None
        };
        let obs: Vec<ObsMetrics> = if self.cfg.obs_capacity > 0 {
            (0..self.cfg.nodes).map(|i| self.node_obs_metrics(i)).collect()
        } else {
            Vec::new()
        };
        let first = self.violations.first().cloned();
        let forensics = if self.cfg.obs_capacity > 0 && (first.is_some() || self.hung) {
            let node = self.attribute_node();
            Some(ViolationReport {
                violation: first,
                trace: self.node_obs_trace(node.index()),
                cycle: now,
                node,
            })
        } else {
            // A recovered run's final state is clean; fall back to the
            // forensics captured at the first (recovered) detection.
            self.recovery_forensics.clone()
        };
        RunReport {
            cycles: now,
            transactions: self.cores.iter().map(Core::transactions).sum(),
            completed,
            hung: self.hung,
            violations: self.violations.clone(),
            detection,
            core_stats: self.cores.iter().map(Core::stats).collect(),
            replay_stats: self.cores.iter().map(Core::replay_stats).collect(),
            cache_stats: (0..self.cfg.nodes)
                .map(|i| self.cluster.cache_stats(nid(i)))
                .collect(),
            max_link_bytes: self.cluster.data_net().max_link_bytes(),
            total_bytes: self.cluster.data_net().total_bytes(),
            checker_bytes: self.cluster.checker_bytes(),
            ber_bytes: self.cluster.ber_bytes(),
            obs,
            forensics,
            recovery,
            memory_digest,
            // Cloned, not drained: `commit_logs()` still works after
            // `report()` and vice versa.
            commit_logs: if self.cfg.record_commits {
                self.cores.iter().map(|c| c.commit_log().to_vec()).collect()
            } else {
                Vec::new()
            },
            checkpoint: self.ckpt_stats,
        }
    }
}

/// The node a violation itself names, when it names one (per-processor
/// violations are attributed by which core reported them instead).
fn violation_node(v: &Violation) -> Option<NodeId> {
    match v {
        Violation::Coherence(c) => Some(match c {
            CoherenceViolation::AccessOutsideEpoch { node, .. }
            | CoherenceViolation::EccMismatch { node, .. } => *node,
            CoherenceViolation::EpochOverlap { home, .. }
            | CoherenceViolation::DataPropagation { home, .. }
            | CoherenceViolation::SpuriousClose { home, .. } => *home,
        }),
        Violation::Reorder(_) | Violation::LostOp(_) | Violation::Uniproc(_) => None,
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("nodes", &self.cfg.nodes)
            .field("model", &self.cfg.model)
            .field("protocol", &self.cfg.protocol)
            .field("cycle", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use dvmc_coherence::Msg;
    use dvmc_core::{EpochKind, InformEpoch};
    use dvmc_faults::FaultPlan;
    use dvmc_types::{BlockAddr, Ts16};

    /// Regression: a faulted run that ends in a hang used to skip both
    /// report() drain paths (no quiescence drain because it's hung, no
    /// end-of-run audit because a fault was scheduled), dropping any
    /// violations still sitting in the cluster and demoting a checker
    /// detection to a hang-only detection with `violation: None`.
    #[test]
    fn hung_faulted_run_keeps_cluster_violations() {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        // Plant a checker violation directly at home 0: an Inform-Epoch
        // for a block never requested through this home is flagged by the
        // MET once the sorter releases it.
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        // Tick the cluster directly (not the system) so the violation is
        // raised but never drained into `sys.violations` — the state a
        // mid-run hang leaves behind.
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        assert!(
            !report.violations.is_empty(),
            "cluster violations must survive a hung faulted run"
        );
        let detection = report.detection.expect("fault + hang is a detection");
        assert!(
            detection.violation.is_some(),
            "the checker's violation must reach the detection verdict"
        );
    }

    /// End-to-end observability: an instrumented error-free run reports
    /// per-node metrics with checker activity, and the planted-violation
    /// scenario above yields forensics with a non-empty trace attributed
    /// to the home that detected it.
    #[test]
    fn obs_metrics_and_forensics_flow_into_the_report() {
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Jbb, 2)
            .obs(32)
            .build();
        let report = sys.run_to_completion(2_000_000);
        assert!(report.completed);
        assert_eq!(report.obs.len(), 2, "one metrics entry per node");
        let total: u64 = report.obs.iter().map(|m| m.events).sum();
        assert!(total > 0, "an instrumented run records checker events");
        assert!(report.forensics.is_none(), "no detection, no forensics");
        assert!(!sys.dump().is_empty());

        let mut sys = SystemBuilder::new()
            .nodes(2)
            .obs(32)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        let forensics = report.forensics.expect("detection with obs enabled");
        assert_eq!(forensics.node, NodeId(0), "attributed to the home");
        assert!(forensics.violation.is_some());
        assert!(
            !forensics.trace.is_empty(),
            "the home's ring retains the events leading up to detection"
        );
        assert!(forensics.chain().contains("crc-check"), "{}", forensics.chain());
    }

    /// The tentpole end-to-end: a transient fault is injected, detected,
    /// rolled back, and replayed — and the recovered run's final memory
    /// (and even its cycle count) is identical to a fault-free golden run
    /// of the same configuration.
    #[test]
    fn transient_fault_recovers_to_the_golden_state() {
        use crate::config::RecoveryPolicy;
        use crate::report::RecoveryOutcome;
        use dvmc_workloads::spec::WorkloadKind;
        let build = |fault: Option<FaultPlan>| {
            let mut b = SystemBuilder::new()
                .nodes(2)
                .workload(WorkloadKind::Jbb, 24)
                .recovery(RecoveryPolicy::default())
                .watchdog(100_000)
                .obs(32)
                .seed(5);
            if let Some(plan) = fault {
                b = b.fault(plan);
            }
            b.build()
        };
        let golden = build(None).run_to_completion(5_000_000);
        assert!(golden.completed && golden.violations.is_empty());
        assert!(golden.recovery.is_none(), "nothing to recover from");

        let plan = FaultPlan {
            at_cycle: 6_000,
            fault: Fault::WbCorruptValue { node: NodeId(1) },
        };
        let report = build(Some(plan)).run_to_completion(5_000_000);
        assert!(report.completed, "replay runs to completion");
        assert!(
            report.violations.is_empty(),
            "no false violations survive rollback/replay: {:?}",
            report.violations
        );
        let rec = report.recovery.expect("a rollback happened");
        assert_eq!(rec.outcome, RecoveryOutcome::Recovered);
        assert!(rec.attempts >= 1);
        assert_eq!(rec.escalations, 0, "first retry needs no escalation");
        let det = report.detection.expect("the fault was detected first");
        assert!(det.recoverable, "within the SafetyNet window");
        assert!(det.violation.is_some() || report.hung);
        assert_eq!(
            report.memory_digest, golden.memory_digest,
            "post-recovery memory must match the fault-free run"
        );
        assert_eq!(report.cycles, golden.cycles, "replay retraces the golden timeline");
        // Recovery observability: events rooted at node 0, forensics of
        // the recovered detection retained.
        assert_eq!(report.obs[0].recoveries_started, u64::from(rec.attempts));
        assert_eq!(report.obs[0].recoveries_completed, 1);
        let forensics = report.forensics.expect("first-detection forensics retained");
        assert!(!forensics.trace.is_empty());
    }

    /// A persistent fault re-manifests on every replay: recovery must
    /// escalate (widening the checkpoint cadence), exhaust its retries,
    /// and report the run unrecoverable with the *first* detection and
    /// its forensics intact — not loop on rollback forever.
    ///
    /// White-box: the injected stuck bit is real and genuinely re-injects
    /// during each replay, but its manifestations are planted (as
    /// watchdog hangs) because organic detection of latent cache
    /// corruption waits on eviction/CRC latency far too long for a unit
    /// test; `exp_recovery` covers the organic end-to-end path.
    #[test]
    fn persistent_fault_exhausts_retries_and_escalates() {
        use crate::config::RecoveryPolicy;
        use crate::report::RecoveryOutcome;
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Oltp, u64::MAX / 2)
            .recovery(RecoveryPolicy {
                max_retries: 2,
                backoff_factor: 2,
            })
            .watchdog(100_000)
            .obs(32)
            .seed(5)
            .fault(FaultPlan {
                at_cycle: 2_000,
                fault: Fault::CacheStuckBit { node: NodeId(1) },
            })
            .build();
        fn run_until(sys: &mut System, cycle: Cycle) {
            while sys.now() < cycle {
                sys.tick();
            }
        }
        run_until(&mut sys, 30_000);
        assert!(sys.fault_done, "the stuck bit was injected");
        // First manifestation.
        sys.hung = true;
        assert!(sys.try_recover(), "first retry rolls back");
        assert_eq!(sys.recovery_attempts, 1);
        assert!(!sys.hung, "rollback clears the hang");
        assert_eq!(sys.now(), 0, "only the initial checkpoint predates the fault");
        assert!(!sys.fault_done, "persistent: the defect re-arms for replay");
        run_until(&mut sys, 30_000);
        assert!(sys.fault_done, "the stuck bit re-manifested during replay");
        // Second manifestation: escalation kicks in.
        sys.hung = true;
        assert!(sys.try_recover(), "second retry still rolls back");
        assert_eq!(sys.recovery_attempts, 2);
        assert_eq!(sys.recovery_escalations, 1);
        assert_eq!(
            sys.ber.as_ref().unwrap().config().checkpoint_interval,
            2 * sys.cfg.ber.checkpoint_interval,
            "escalation widened the checkpoint cadence"
        );
        run_until(&mut sys, 30_000);
        // Third manifestation: retries are exhausted.
        sys.hung = true;
        assert!(!sys.try_recover(), "retries exhausted: recovery gives up");
        let report = sys.report();
        let rec = report.recovery.expect("recovery ran");
        assert_eq!(rec.outcome, RecoveryOutcome::Unrecoverable);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.escalations, 1);
        assert!(report.hung, "the final manifestation is still on record");
        let det = report.detection.expect("the first detection is preserved");
        assert_eq!(det.detected_at, 30_000, "detection time of the FIRST manifestation");
        assert!(det.recoverable, "recoverable at detection, yet persistent");
        let forensics = report.forensics.expect("unrecoverable verdict carries forensics");
        assert!(!forensics.trace.is_empty());
        assert_eq!(report.obs[0].recoveries_started, 2);
        assert_eq!(report.obs[0].recovery_escalations, 1);
        assert_eq!(report.obs[0].recoveries_completed, 0);
    }

    /// Service mode end to end: an open-loop run under a two-fault
    /// transient storm detects both, recovers both in-line, closes both
    /// episodes with finite latencies, and reaches the horizon with zero
    /// unrecovered faults and zero false violations. Windows tile the
    /// timeline contiguously and account for the injections.
    #[test]
    fn service_mode_recovers_a_transient_storm() {
        use crate::config::RecoveryPolicy;
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Service { mean_gap: 400 }, u64::MAX / 2)
            .recovery(RecoveryPolicy {
                max_retries: 4,
                backoff_factor: 2,
            })
            .watchdog(60_000)
            .obs(32)
            .seed(11)
            .storm(vec![
                FaultPlan {
                    at_cycle: 6_000,
                    fault: Fault::WbCorruptValue { node: NodeId(1) },
                },
                FaultPlan {
                    at_cycle: 90_000,
                    fault: Fault::WbDropStore { node: NodeId(0) },
                },
            ])
            .build();
        sys.arm_service(25_000);
        let mut streamed = 0usize;
        let stop = sys.run_service_until(250_000, &mut |_snap| streamed += 1);
        assert_eq!(stop, ServiceStop::Horizon, "no fatal stop under a transient storm");
        let svc = sys.finish_service();
        assert_eq!(svc.stopped, ServiceStop::Horizon);
        assert_eq!(svc.injected, 2, "both storm members injected");
        assert_eq!(svc.unrecovered(), 0, "every detected fault recovered");
        assert!(svc.report.violations.is_empty(), "no violation outlives recovery");
        assert!(!svc.report.hung);
        // Every closed episode recovered, with sane latency ordering.
        assert!(!svc.episodes.is_empty(), "the storm produced episodes");
        for ep in &svc.episodes {
            if let Some(d) = ep.detected_at {
                assert!(ep.recovery_latency().is_some(), "recovered: {ep:?}");
                let r = ep.recovered_at.expect("recovered episodes carry a clean time");
                assert!(r > d, "the machine comes clean strictly after detection");
                assert!(d >= ep.injected_at, "detection follows injection");
                assert!(ep.attempts >= 1);
            }
        }
        // Windows tile the timeline: contiguous, streamed in order, and
        // the storm's injections are attributed to some window.
        // Every full window was streamed live; a final *partial* window
        // exists only when the run ends off a boundary.
        assert!(
            svc.windows.len() == streamed || svc.windows.len() == streamed + 1,
            "{} streamed vs {} recorded",
            streamed,
            svc.windows.len()
        );
        for w in windows_pairs(&svc.windows) {
            assert_eq!(w.0.end, w.1.start, "windows are contiguous");
        }
        let injected: u64 = svc.windows.iter().map(|w| w.injected).sum();
        assert_eq!(injected, 2);
        let retired: u64 = svc.windows.iter().map(|w| w.retired_ops).sum();
        assert!(retired > 0, "open-loop traffic made forward progress");
        let closed: u64 = svc.windows.iter().map(|w| w.episodes_closed).sum();
        assert_eq!(closed as usize, svc.episodes.len(), "window deltas account every episode");
    }

    fn windows_pairs(w: &[WindowSnapshot]) -> impl Iterator<Item = (&WindowSnapshot, &WindowSnapshot)> {
        w.iter().zip(w.iter().skip(1))
    }

    /// White-box: an outstanding fault that outlives the SafetyNet
    /// recovery window without ever being detected is aged out as
    /// *masked*, and its never-detected episode closes with no attempts.
    #[test]
    fn undetected_faults_age_out_as_masked() {
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Service { mean_gap: 400 }, u64::MAX / 2)
            .obs(32)
            .seed(7)
            .build();
        sys.arm_service(10_000);
        let plan = FaultPlan {
            at_cycle: 0,
            fault: Fault::MemoryBitFlip { node: NodeId(1) },
        };
        sys.outstanding.push((plan, 100));
        sys.total_injected = 1;
        sys.episode = Some(EpisodeState {
            faults: vec![plan.fault],
            injected_at: 100,
            detected_at: None,
            attempts: 0,
            rollback_depth: 0,
            clean_after: 100,
        });
        let window = sys.cfg.ber.recovery_window();
        sys.age_masked(100 + window); // still inside the window
        assert_eq!(sys.masked, 0);
        assert!(sys.episode.is_some());
        sys.age_masked(101 + window); // one past it
        assert_eq!(sys.masked, 1);
        assert!(sys.episode.is_none(), "the never-detected episode closed");
        assert!(sys.outstanding.is_empty());
        let svc = sys.finish_service();
        assert_eq!(svc.masked, 1);
        assert_eq!(svc.unrecovered(), 0, "masked faults are not unrecovered");
        let ep = &svc.episodes[0];
        assert_eq!(ep.detected_at, None);
        assert_eq!(ep.attempts, 0);
        assert_eq!(ep.recovered_at, None);
    }

    /// Cores apply a requested consistency-model switch only at a
    /// quiescent point, and the service harness's per-boundary re-assert
    /// is idempotent.
    #[test]
    fn model_switch_applies_quiescently_in_service_mode() {
        use dvmc_consistency::Model;
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Service { mean_gap: 400 }, u64::MAX / 2)
            .model(Model::Tso)
            .seed(3)
            .build();
        sys.arm_service(5_000);
        let stop = sys.run_service_until(20_000, &mut |_| {});
        assert_eq!(stop, ServiceStop::Horizon);
        sys.switch_model(Model::Rmo);
        sys.switch_model(Model::Rmo); // idempotent re-assert
        let stop = sys.run_service_until(60_000, &mut |_| {});
        assert_eq!(stop, ServiceStop::Horizon);
        for core in &sys.cores {
            assert_eq!(core.model(), Model::Rmo, "switch applied at a quiescent point");
        }
        let svc = sys.finish_service();
        assert_eq!(svc.stopped, ServiceStop::Horizon);
        assert!(svc.report.violations.is_empty(), "{:?}", svc.report.violations);
    }
}
