//! The full system: cores + coherent memory system + checkers + BER +
//! fault injection, advanced cycle by cycle.

use crate::config::SystemConfig;
use crate::report::{Detection, RunReport};
use dvmc_ber::{BerEvent, SafetyNet, SafetyNetConfig};
use dvmc_coherence::Cluster;
use dvmc_core::{CoherenceViolation, ObsMetrics, TimedEvent, Violation, ViolationReport};
use dvmc_faults::Fault;
use dvmc_pipeline::Core;
use dvmc_types::rng::{det_rng, derive_seed, DetRng};
use dvmc_types::{Cycle, NodeId};
use dvmc_workloads::spec::build_streams;
use rand::Rng;

/// A complete simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    cluster: Cluster,
    ber: Option<SafetyNet>,
    rng: DetRng,
    violations: Vec<Violation>,
    fault_injected_at: Option<Cycle>,
    fault_done: bool,
    /// Per-core (retired count, last progress cycle) for the hang watchdog.
    progress: Vec<(u64, Cycle)>,
    hung: bool,
    /// The node whose core reported the run's first violation, for
    /// forensic attribution (per-processor violations don't name their
    /// node; coherence violations do).
    first_violation_node: Option<usize>,
}

/// `NodeId` for node index `i`, under the `System` invariant that
/// `cfg.nodes <= u8::MAX` ([`SystemConfig::validate`] enforces it at
/// construction, so the cast can no longer truncate).
#[inline]
fn nid(i: usize) -> NodeId {
    debug_assert!(i <= u8::MAX as usize, "node index {i} exceeds NodeId range");
    NodeId(i as u8)
}

impl System {
    /// Builds the system from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] — use
    /// [`crate::SystemBuilder::try_build`] to handle the error instead.
    pub fn new(cfg: SystemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system configuration: {e}");
        }
        let mut cluster = Cluster::new(cfg.cluster_config());
        let core_cfg = cfg.core_config();
        let streams = build_streams(&cfg.workload);
        let mut cores: Vec<Core> = streams
            .into_iter()
            .map(|s| Core::new(core_cfg, s))
            .collect();
        if cfg.obs_capacity > 0 {
            for core in &mut cores {
                core.enable_obs(cfg.obs_capacity);
            }
            cluster.enable_obs(cfg.obs_capacity);
        }
        System {
            cores,
            cluster,
            ber: cfg
                .protection
                .ber
                .then(|| SafetyNet::new(SafetyNetConfig::default())),
            rng: det_rng(derive_seed(cfg.workload.seed, 0xFA17)),
            violations: Vec::new(),
            fault_injected_at: None,
            fault_done: cfg.fault.is_none(),
            progress: vec![(0, 0); cfg.nodes],
            hung: false,
            first_violation_node: None,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.cluster.now()
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        let now = self.cluster.now();
        self.maybe_inject_fault(now);
        // BER checkpointing and its coordination traffic.
        if let Some(ber) = self.ber.as_mut() {
            if let Some(BerEvent::CheckpointTaken { .. }) = ber.tick(now) {
                let bytes = ber.config().coordination_bytes;
                for i in 1..self.cfg.nodes {
                    self.cluster.send_ber(nid(i), NodeId(0), bytes);
                    self.cluster.send_ber(NodeId(0), nid(i), bytes);
                }
            }
        }
        // Cores interact with their caches. Invalidations are noted
        // before responses are delivered: a response and the invalidation
        // that staled it can land in the same cycle, and the speculation
        // window must close first (§4.1).
        for (i, core) in self.cores.iter_mut().enumerate() {
            let id = nid(i);
            let inv = self.cluster.drain_invalidated(id);
            core.note_invalidations(&inv);
            while let Some(resp) = self.cluster.pop_resp(id) {
                core.deliver(resp);
            }
            for req in core.tick(now) {
                self.cluster.submit(id, req);
            }
            let drained = core.drain_violations();
            if !drained.is_empty() && self.violations.is_empty() {
                self.first_violation_node.get_or_insert(i);
            }
            self.violations.extend(drained);
        }
        // The memory system advances.
        self.cluster.tick();
        self.violations.extend(self.cluster.drain_violations());
        // Per-core hang watchdog (real systems detect lost requests with
        // per-transaction timeouts; a core that stops retiring while not
        // finished is hung even if its peers still make progress).
        for (i, core) in self.cores.iter().enumerate() {
            let retired = core.retired_ops();
            if retired != self.progress[i].0 || core.is_done() {
                self.progress[i] = (retired, now);
            } else if now - self.progress[i].1 > self.cfg.watchdog_cycles {
                self.hung = true;
            }
        }
    }

    /// Drains each core's commit log (one `(seq, class, value)` entry per
    /// committed memory op). Empty unless the configuration set
    /// `record_commits`; used by the litmus conformance harness to observe
    /// the values loads actually returned.
    pub fn commit_logs(&mut self) -> Vec<Vec<(dvmc_types::SeqNum, dvmc_consistency::OpClass, u64)>> {
        self.cores.iter_mut().map(Core::take_commit_log).collect()
    }

    /// Debug helper: per-core retired counts plus hang flag.
    pub fn report_peek(&self) -> (Vec<u64>, bool) {
        (
            self.cores.iter().map(Core::retired_ops).collect(),
            self.hung,
        )
    }

    /// Debug helper: renders every core and cache controller, followed —
    /// when observability is enabled — by each node's checker metrics and
    /// its retained event trace.
    pub fn dump(&mut self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for i in 0..self.cfg.nodes {
            let _ = writeln!(out, "core{i}: {}", self.cores[i].dump());
            let _ = writeln!(out, "node{i}: {}", self.cluster.node_mut(nid(i)).dump());
        }
        if self.cfg.obs_capacity > 0 {
            for i in 0..self.cfg.nodes {
                let m = self.node_obs_metrics(i);
                let _ = writeln!(
                    out,
                    "obs{i}: events={} vc={}a/{}d replay={}hit/{}read maxop={} \
                     membar={} epoch={}o/{}c scrub={} inform={}q/{}r crc={} hwm={}",
                    m.events,
                    m.vc_allocs,
                    m.vc_deallocs,
                    m.replay_vc_hits,
                    m.replay_cache_reads,
                    m.max_op_updates,
                    m.membar_checks,
                    m.epoch_opens,
                    m.epoch_closes,
                    m.scrubs,
                    m.informs_enqueued,
                    m.informs_reordered,
                    m.crc_checks,
                    m.sorter_occupancy_hwm,
                );
                for ev in self.node_obs_trace(i) {
                    let _ = writeln!(out, "  {ev}");
                }
            }
        }
        out
    }

    /// Merged observability metrics of node `i`'s checkers (zeroed when
    /// observability is disabled).
    fn node_obs_metrics(&self, i: usize) -> ObsMetrics {
        let mut m = ObsMetrics::default();
        for ring in self.cores[i].obs_rings() {
            m.merge(&ring.metrics());
        }
        for ring in self.cluster.obs_rings(nid(i)) {
            m.merge(&ring.metrics());
        }
        m
    }

    /// The retained events of node `i`'s checkers, merged across rings,
    /// sorted by cycle, and capped at the configured ring capacity.
    fn node_obs_trace(&self, i: usize) -> Vec<TimedEvent> {
        let mut trace: Vec<TimedEvent> = self.cores[i]
            .obs_rings()
            .into_iter()
            .chain(self.cluster.obs_rings(nid(i)))
            .flat_map(|ring| ring.events().copied())
            .collect();
        trace.sort_by_key(|e| e.cycle);
        let skip = trace.len().saturating_sub(self.cfg.obs_capacity);
        trace.drain(..skip);
        trace
    }

    /// Arms a network fault targeting coherence-protocol messages (checker
    /// and BER traffic are excluded: losing them costs detection coverage
    /// or a false positive, not correctness — §6.1 injects protocol
    /// errors).
    fn arm_net_fault(&mut self, fault: dvmc_interconnect::NetFault) {
        use dvmc_coherence::Msg;
        self.cluster.data_net_mut().arm_fault_filtered(fault, |m: &Msg| {
            !matches!(m, Msg::Epoch(_) | Msg::Ber { .. })
        });
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    fn maybe_inject_fault(&mut self, now: Cycle) {
        if self.fault_done {
            return;
        }
        let Some(plan) = self.cfg.fault else {
            self.fault_done = true;
            return;
        };
        if now < plan.at_cycle {
            return;
        }
        // Some faults need state to exist (a resident line, a WB entry);
        // retry every cycle until the injection takes.
        let idx = self.rng.gen::<u64>() as usize;
        let bit = self.rng.gen::<u32>();
        let took = match plan.fault {
            Fault::CacheBitFlip { node } => self
                .cluster
                .node_mut(node)
                .corrupt_l2(idx, bit as usize % 512)
                .is_some(),
            Fault::MemoryBitFlip { node } => self
                .cluster
                .home_mut(node)
                .corrupt_memory(idx, bit as usize % 512)
                .is_some(),
            Fault::DropMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Drop);
                true
            }
            Fault::DuplicateMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Duplicate);
                true
            }
            Fault::MisrouteMessage { to } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Misroute(to));
                true
            }
            Fault::ReorderMessage { delay } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Delay(delay));
                true
            }
            Fault::WbDropStore { node } => self.cores[node.index()].inject_wb_drop(),
            Fault::WbReorderStores { node } => self.cores[node.index()].inject_wb_reorder(),
            Fault::WbCorruptValue { node } => self.cores[node.index()].inject_wb_corrupt(bit),
            Fault::WbAddressFlip { node } => self.cores[node.index()].inject_wb_addr_flip(bit),
            Fault::LsqWrongForward { node } => {
                self.cores[node.index()].arm_lsq_wrong_forward();
                true
            }
            Fault::CacheCtrlBogusUpgrade { node } => self
                .cluster
                .node_mut(node)
                .corrupt_upgrade(idx)
                .is_some(),
            Fault::MemCtrlForgetOwner { node } => self
                .cluster
                .home_mut(node)
                .corrupt_forget_owner(idx)
                .is_some(),
        };
        if took {
            self.fault_injected_at = Some(now);
            self.fault_done = true;
        }
    }

    /// Runs to completion (all threads finish their transaction quota),
    /// detection (when a fault is scheduled), hang, or the cycle limit.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunReport {
        let limit = max_cycles.min(self.cfg.max_cycles);
        let fault_scheduled = self.cfg.fault.is_some();
        while self.now() < limit {
            self.tick();
            if fault_scheduled && self.fault_injected_at.is_some() && !self.violations.is_empty() {
                break; // detected
            }
            if self.hung || self.all_done() {
                break;
            }
        }
        self.report()
    }

    /// Assembles the final report (flushes the coherence checker).
    pub fn report(&mut self) -> RunReport {
        let completed = self.all_done();
        // Drain in-flight coherence traffic (informs, acks, writebacks)
        // before the end-of-run audit; the cores are done but the memory
        // system may not be.
        if completed && !self.hung {
            let _ = self.cluster.run_to_quiescence(500_000);
            self.violations.extend(self.cluster.drain_violations());
        }
        let now = self.now();
        // End-of-run audit; skipped when a fault already led to a
        // detection or hang, where in-flight state is expectedly
        // inconsistent and the verdict has been decided.
        if self.cfg.fault.is_none() || (self.violations.is_empty() && !self.hung) {
            self.violations.extend(self.cluster.finish());
        }
        // A hung faulted run takes neither branch above, yet its checkers
        // may already have raised violations that are still sitting in the
        // cluster; drain unconditionally so the verdict sees them
        // (previously they were dropped, demoting checker detections to
        // hang-only detections).
        self.violations.extend(self.cluster.drain_violations());
        let detection = match (self.cfg.fault, self.fault_injected_at) {
            (Some(plan), Some(injected_at)) if !self.violations.is_empty() || self.hung => {
                let recoverable = self
                    .ber
                    .as_ref()
                    .is_some_and(|b| b.recoverable(injected_at, now));
                Some(Detection {
                    fault: plan.fault,
                    injected_at,
                    detected_at: now,
                    violation: self.violations.first().cloned(),
                    recoverable,
                })
            }
            _ => None,
        };
        let obs: Vec<ObsMetrics> = if self.cfg.obs_capacity > 0 {
            (0..self.cfg.nodes).map(|i| self.node_obs_metrics(i)).collect()
        } else {
            Vec::new()
        };
        let first = self.violations.first().cloned();
        let forensics = if self.cfg.obs_capacity > 0 && (first.is_some() || self.hung) {
            // Attribute the detection to a node: the violation names one,
            // or the core that reported first, or the fault's location.
            let node = first
                .as_ref()
                .and_then(violation_node)
                .or(self.first_violation_node.map(nid))
                .or(self.cfg.fault.and_then(|p| p.fault.node()))
                .unwrap_or(NodeId(0));
            Some(ViolationReport {
                violation: first,
                trace: self.node_obs_trace(node.index()),
                cycle: now,
                node,
            })
        } else {
            None
        };
        RunReport {
            cycles: now,
            transactions: self.cores.iter().map(Core::transactions).sum(),
            completed,
            hung: self.hung,
            violations: self.violations.clone(),
            detection,
            core_stats: self.cores.iter().map(Core::stats).collect(),
            replay_stats: self.cores.iter().map(Core::replay_stats).collect(),
            cache_stats: (0..self.cfg.nodes)
                .map(|i| self.cluster.cache_stats(nid(i)))
                .collect(),
            max_link_bytes: self.cluster.data_net().max_link_bytes(),
            total_bytes: self.cluster.data_net().total_bytes(),
            checker_bytes: self.cluster.checker_bytes(),
            ber_bytes: self.cluster.ber_bytes(),
            obs,
            forensics,
        }
    }
}

/// The node a violation itself names, when it names one (per-processor
/// violations are attributed by which core reported them instead).
fn violation_node(v: &Violation) -> Option<NodeId> {
    match v {
        Violation::Coherence(c) => Some(match c {
            CoherenceViolation::AccessOutsideEpoch { node, .. }
            | CoherenceViolation::EccMismatch { node, .. } => *node,
            CoherenceViolation::EpochOverlap { home, .. }
            | CoherenceViolation::DataPropagation { home, .. }
            | CoherenceViolation::SpuriousClose { home, .. } => *home,
        }),
        Violation::Reorder(_) | Violation::LostOp(_) | Violation::Uniproc(_) => None,
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("nodes", &self.cfg.nodes)
            .field("model", &self.cfg.model)
            .field("protocol", &self.cfg.protocol)
            .field("cycle", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use dvmc_coherence::Msg;
    use dvmc_core::{EpochKind, InformEpoch};
    use dvmc_faults::FaultPlan;
    use dvmc_types::{BlockAddr, Ts16};

    /// Regression: a faulted run that ends in a hang used to skip both
    /// report() drain paths (no quiescence drain because it's hung, no
    /// end-of-run audit because a fault was scheduled), dropping any
    /// violations still sitting in the cluster and demoting a checker
    /// detection to a hang-only detection with `violation: None`.
    #[test]
    fn hung_faulted_run_keeps_cluster_violations() {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        // Plant a checker violation directly at home 0: an Inform-Epoch
        // for a block never requested through this home is flagged by the
        // MET once the sorter releases it.
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        // Tick the cluster directly (not the system) so the violation is
        // raised but never drained into `sys.violations` — the state a
        // mid-run hang leaves behind.
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        assert!(
            !report.violations.is_empty(),
            "cluster violations must survive a hung faulted run"
        );
        let detection = report.detection.expect("fault + hang is a detection");
        assert!(
            detection.violation.is_some(),
            "the checker's violation must reach the detection verdict"
        );
    }

    /// End-to-end observability: an instrumented error-free run reports
    /// per-node metrics with checker activity, and the planted-violation
    /// scenario above yields forensics with a non-empty trace attributed
    /// to the home that detected it.
    #[test]
    fn obs_metrics_and_forensics_flow_into_the_report() {
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Jbb, 2)
            .obs(32)
            .build();
        let report = sys.run_to_completion(2_000_000);
        assert!(report.completed);
        assert_eq!(report.obs.len(), 2, "one metrics entry per node");
        let total: u64 = report.obs.iter().map(|m| m.events).sum();
        assert!(total > 0, "an instrumented run records checker events");
        assert!(report.forensics.is_none(), "no detection, no forensics");
        assert!(!sys.dump().is_empty());

        let mut sys = SystemBuilder::new()
            .nodes(2)
            .obs(32)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        let forensics = report.forensics.expect("detection with obs enabled");
        assert_eq!(forensics.node, NodeId(0), "attributed to the home");
        assert!(forensics.violation.is_some());
        assert!(
            !forensics.trace.is_empty(),
            "the home's ring retains the events leading up to detection"
        );
        assert!(forensics.chain().contains("crc-check"), "{}", forensics.chain());
    }
}
