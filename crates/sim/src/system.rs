//! The full system: cores + coherent memory system + checkers + BER +
//! fault injection, advanced cycle by cycle.

use crate::config::SystemConfig;
use crate::report::{Detection, RecoveryOutcome, RecoveryReport, RunReport};
use dvmc_ber::SafetyNet;
use dvmc_coherence::Cluster;
use dvmc_core::{
    CheckerEvent, CoherenceViolation, EventSink, ObsMetrics, ObsRing, TimedEvent, Violation,
    ViolationReport,
};
use dvmc_faults::Fault;
use dvmc_pipeline::Core;
use dvmc_types::rng::{det_rng, derive_seed, DetRng};
use dvmc_types::{Cycle, NodeId};
use dvmc_workloads::spec::build_streams;
use rand::Rng;

/// Everything a rollback must restore: the architectural and
/// microarchitectural state of every core (ROBs, write buffers, checkers,
/// instruction streams), the whole memory system (caches, directories,
/// in-flight interconnect traffic, the cluster clock), the
/// fault-injection RNG, and the watchdog's progress clocks. SafetyNet
/// checkpoints carry one of these when recovery is armed.
#[derive(Clone)]
struct Snapshot {
    cores: Vec<Core>,
    cluster: Cluster,
    rng: DetRng,
    progress: Vec<(u64, Cycle)>,
}

/// A complete simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    cluster: Cluster,
    /// Checkpoint log; payloads are `Some` only when recovery is armed
    /// (the deep clones are not free, and the perf experiments model BER
    /// timing without them).
    ber: Option<SafetyNet<Option<Snapshot>>>,
    rng: DetRng,
    violations: Vec<Violation>,
    fault_injected_at: Option<Cycle>,
    fault_done: bool,
    /// Per-core (retired count, last progress cycle) for the hang watchdog.
    progress: Vec<(u64, Cycle)>,
    hung: bool,
    /// The node whose core reported the run's first violation, for
    /// forensic attribution (per-processor violations don't name their
    /// node; coherence violations do).
    first_violation_node: Option<usize>,
    /// Rollback/replay attempts performed so far.
    recovery_attempts: u32,
    /// Retry escalations (checkpoint-interval widenings).
    recovery_escalations: u32,
    /// The first detection, preserved across rollbacks (recovery rewinds
    /// the live evidence).
    recovery_detection: Option<Detection>,
    /// Forensics of the first detection, captured before restore rewound
    /// the event rings.
    recovery_forensics: Option<ViolationReport>,
    /// The cycle of the checkpoint the last rollback restored.
    recovery_checkpoint: Cycle,
    /// Recovery gave up (retries exhausted or the error escaped the
    /// checkpoint window).
    unrecoverable: bool,
    /// Event ring for recovery orchestration; deliberately *outside* the
    /// snapshots so a rollback cannot erase recovery history. Merged into
    /// node 0's observability (BER coordination is rooted there).
    recovery_ring: Option<ObsRing>,
}

/// `NodeId` for node index `i`, under the `System` invariant that
/// `cfg.nodes <= u8::MAX` ([`SystemConfig::validate`] enforces it at
/// construction, so the cast can no longer truncate).
#[inline]
fn nid(i: usize) -> NodeId {
    debug_assert!(i <= u8::MAX as usize, "node index {i} exceeds NodeId range");
    NodeId(i as u8)
}

impl System {
    /// Builds the system from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] — use
    /// [`crate::SystemBuilder::try_build`] to handle the error instead.
    pub fn new(cfg: SystemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system configuration: {e}");
        }
        let mut cluster = Cluster::new(cfg.cluster_config());
        let core_cfg = cfg.core_config();
        let streams = build_streams(&cfg.workload);
        let mut cores: Vec<Core> = streams
            .into_iter()
            .map(|s| Core::new(core_cfg, s))
            .collect();
        if cfg.obs_capacity > 0 {
            for core in &mut cores {
                core.enable_obs(cfg.obs_capacity);
            }
            cluster.enable_obs(cfg.obs_capacity);
        }
        let recovery_ring = (cfg.obs_capacity > 0 && cfg.recovery.is_some())
            .then(|| ObsRing::new(cfg.obs_capacity));
        let mut sys = System {
            cores,
            cluster,
            ber: None,
            rng: det_rng(derive_seed(cfg.workload.seed, 0xFA17)),
            violations: Vec::new(),
            fault_injected_at: None,
            fault_done: cfg.fault.is_none(),
            progress: vec![(0, 0); cfg.nodes],
            hung: false,
            first_violation_node: None,
            recovery_attempts: 0,
            recovery_escalations: 0,
            recovery_detection: None,
            recovery_forensics: None,
            recovery_checkpoint: 0,
            unrecoverable: false,
            recovery_ring,
            cfg,
        };
        if sys.cfg.protection.ber {
            // The initial time-0 checkpoint snapshots the pristine system
            // when recovery is armed, so even an error in the very first
            // interval has a restore point.
            let initial = sys.cfg.recovery.is_some().then(|| sys.snapshot());
            sys.ber = Some(
                SafetyNet::with_initial(sys.cfg.ber, initial)
                    .expect("SystemConfig::validate vetted the BER config"),
            );
        }
        sys
    }

    /// Deep-copies the rollback-relevant machine state.
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            cores: self.cores.clone(),
            cluster: self.cluster.clone(),
            rng: self.rng.clone(),
            progress: self.progress.clone(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.cluster.now()
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        let now = self.cluster.now();
        // BER checkpointing and its coordination traffic. Runs *before*
        // fault injection so a checkpoint taken the cycle the fault lands
        // never embeds it (`recovery_point` admits checkpoints with
        // `taken_at <= error_time`; the reorder is behaviourally neutral
        // otherwise — the injection RNG only advances once the fault is
        // due, and BER traffic is excluded from network faults). The
        // coordination bytes are sent inside the snapshot closure so the
        // snapshot includes them and a restored run resumes exactly after
        // the checkpoint.
        if let Some(mut ber) = self.ber.take() {
            let bytes = ber.config().coordination_bytes;
            let nodes = self.cfg.nodes;
            let with_state = self.cfg.recovery.is_some();
            ber.tick_with(now, || {
                for i in 1..nodes {
                    self.cluster.send_ber(nid(i), NodeId(0), bytes);
                    self.cluster.send_ber(NodeId(0), nid(i), bytes);
                }
                with_state.then(|| self.snapshot())
            });
            self.ber = Some(ber);
        }
        self.maybe_inject_fault(now);
        // Cores interact with their caches. Invalidations are noted
        // before responses are delivered: a response and the invalidation
        // that staled it can land in the same cycle, and the speculation
        // window must close first (§4.1).
        for (i, core) in self.cores.iter_mut().enumerate() {
            let id = nid(i);
            let inv = self.cluster.drain_invalidated(id);
            core.note_invalidations(&inv);
            while let Some(resp) = self.cluster.pop_resp(id) {
                core.deliver(resp);
            }
            for req in core.tick(now) {
                self.cluster.submit(id, req);
            }
            let drained = core.drain_violations();
            if !drained.is_empty() && self.violations.is_empty() {
                self.first_violation_node.get_or_insert(i);
            }
            self.violations.extend(drained);
        }
        // The memory system advances.
        self.cluster.tick();
        self.violations.extend(self.cluster.drain_violations());
        // Per-core hang watchdog (real systems detect lost requests with
        // per-transaction timeouts; a core that stops retiring while not
        // finished is hung even if its peers still make progress).
        for (i, core) in self.cores.iter().enumerate() {
            let retired = core.retired_ops();
            if retired != self.progress[i].0 || core.is_done() {
                self.progress[i] = (retired, now);
            } else if now - self.progress[i].1 > self.cfg.watchdog_cycles {
                self.hung = true;
            }
        }
    }

    /// Drains each core's commit log (one [`CommitRecord`] per committed
    /// memory op). Empty unless the configuration set `record_commits`;
    /// used by the litmus conformance harness to observe the values loads
    /// actually returned, and by the offline consistency oracle.
    ///
    /// [`CommitRecord`]: dvmc_consistency::CommitRecord
    pub fn commit_logs(&mut self) -> Vec<Vec<dvmc_consistency::CommitRecord>> {
        self.cores.iter_mut().map(Core::take_commit_log).collect()
    }

    /// Debug helper: per-core retired counts plus hang flag.
    pub fn report_peek(&self) -> (Vec<u64>, bool) {
        (
            self.cores.iter().map(Core::retired_ops).collect(),
            self.hung,
        )
    }

    /// Debug helper: renders every core and cache controller, followed —
    /// when observability is enabled — by each node's checker metrics and
    /// its retained event trace.
    pub fn dump(&mut self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for i in 0..self.cfg.nodes {
            let _ = writeln!(out, "core{i}: {}", self.cores[i].dump());
            let _ = writeln!(out, "node{i}: {}", self.cluster.node_mut(nid(i)).dump());
        }
        if self.cfg.obs_capacity > 0 {
            for i in 0..self.cfg.nodes {
                let m = self.node_obs_metrics(i);
                let _ = writeln!(
                    out,
                    "obs{i}: events={} vc={}a/{}d replay={}hit/{}read maxop={} \
                     membar={} epoch={}o/{}c scrub={} inform={}q/{}r crc={} hwm={} \
                     rec={}s/{}c/{}e",
                    m.events,
                    m.vc_allocs,
                    m.vc_deallocs,
                    m.replay_vc_hits,
                    m.replay_cache_reads,
                    m.max_op_updates,
                    m.membar_checks,
                    m.epoch_opens,
                    m.epoch_closes,
                    m.scrubs,
                    m.informs_enqueued,
                    m.informs_reordered,
                    m.crc_checks,
                    m.sorter_occupancy_hwm,
                    m.recoveries_started,
                    m.recoveries_completed,
                    m.recovery_escalations,
                );
                for ev in self.node_obs_trace(i) {
                    let _ = writeln!(out, "  {ev}");
                }
            }
        }
        out
    }

    /// Merged observability metrics of node `i`'s checkers (zeroed when
    /// observability is disabled).
    fn node_obs_metrics(&self, i: usize) -> ObsMetrics {
        let mut m = ObsMetrics::default();
        for ring in self.cores[i].obs_rings() {
            m.merge(&ring.metrics());
        }
        for ring in self.cluster.obs_rings(nid(i)) {
            m.merge(&ring.metrics());
        }
        if i == 0 {
            // Recovery orchestration is globally coordinated; like BER
            // traffic, its events are rooted at node 0.
            if let Some(ring) = self.recovery_ring.as_ref() {
                m.merge(&ring.metrics());
            }
        }
        m
    }

    /// The retained events of node `i`'s checkers, merged across rings,
    /// sorted by cycle, and capped at the configured ring capacity.
    fn node_obs_trace(&self, i: usize) -> Vec<TimedEvent> {
        let mut trace: Vec<TimedEvent> = self.cores[i]
            .obs_rings()
            .into_iter()
            .chain(self.cluster.obs_rings(nid(i)))
            .flat_map(|ring| ring.events().copied())
            .collect();
        if i == 0 {
            if let Some(ring) = self.recovery_ring.as_ref() {
                trace.extend(ring.events().copied());
            }
        }
        trace.sort_by_key(|e| e.cycle);
        let skip = trace.len().saturating_sub(self.cfg.obs_capacity);
        trace.drain(..skip);
        trace
    }

    /// Arms a network fault targeting coherence-protocol messages (checker
    /// and BER traffic are excluded: losing them costs detection coverage
    /// or a false positive, not correctness — §6.1 injects protocol
    /// errors).
    fn arm_net_fault(&mut self, fault: dvmc_interconnect::NetFault) {
        use dvmc_coherence::Msg;
        self.cluster.data_net_mut().arm_fault_filtered(fault, |m: &Msg| {
            !matches!(m, Msg::Epoch(_) | Msg::Ber { .. })
        });
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    fn maybe_inject_fault(&mut self, now: Cycle) {
        if self.fault_done {
            return;
        }
        let Some(plan) = self.cfg.fault else {
            self.fault_done = true;
            return;
        };
        if now < plan.at_cycle {
            return;
        }
        // Some faults need state to exist (a resident line, a WB entry);
        // retry every cycle until the injection takes.
        let idx = self.rng.gen::<u64>() as usize;
        let bit = self.rng.gen::<u32>();
        let took = match plan.fault {
            Fault::CacheBitFlip { node } => self
                .cluster
                .node_mut(node)
                .corrupt_l2(idx, bit as usize % 512)
                .is_some(),
            Fault::MemoryBitFlip { node } => self
                .cluster
                .home_mut(node)
                .corrupt_memory(idx, bit as usize % 512)
                .is_some(),
            Fault::DropMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Drop);
                true
            }
            Fault::DuplicateMessage => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Duplicate);
                true
            }
            Fault::MisrouteMessage { to } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Misroute(to));
                true
            }
            Fault::ReorderMessage { delay } => {
                self.arm_net_fault(dvmc_interconnect::NetFault::Delay(delay));
                true
            }
            Fault::WbDropStore { node } => self.cores[node.index()].inject_wb_drop(),
            Fault::WbReorderStores { node } => self.cores[node.index()].inject_wb_reorder(),
            Fault::WbCorruptValue { node } => self.cores[node.index()].inject_wb_corrupt(bit),
            Fault::WbAddressFlip { node } => self.cores[node.index()].inject_wb_addr_flip(bit),
            Fault::LsqWrongForward { node } => {
                self.cores[node.index()].arm_lsq_wrong_forward();
                true
            }
            Fault::CacheCtrlBogusUpgrade { node } => self
                .cluster
                .node_mut(node)
                .corrupt_upgrade(idx)
                .is_some(),
            Fault::MemCtrlForgetOwner { node } => self
                .cluster
                .home_mut(node)
                .corrupt_forget_owner(idx)
                .is_some(),
            // A stuck bit injects like a cache data flip; its persistence
            // lives in the recovery path, which re-arms it after rollback.
            Fault::CacheStuckBit { node } => self
                .cluster
                .node_mut(node)
                .corrupt_l2(idx, bit as usize % 512)
                .is_some(),
        };
        if took {
            self.fault_injected_at = Some(now);
            self.fault_done = true;
        }
    }

    /// Runs to completion (all threads finish their transaction quota),
    /// detection (when a fault is scheduled), hang, or the cycle limit.
    ///
    /// With recovery armed, a detection — checker violation or watchdog
    /// hang — triggers rollback to the newest validated pre-error
    /// checkpoint and the run *continues*, replaying from there; only an
    /// unrecoverable verdict (retries exhausted, window escaped) stops it.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunReport {
        let limit = max_cycles.min(self.cfg.max_cycles);
        let fault_scheduled = self.cfg.fault.is_some();
        while self.now() < limit {
            self.tick();
            if fault_scheduled
                && self.fault_injected_at.is_some()
                && (!self.violations.is_empty() || self.hung)
            {
                // Detected, by a checker or by the hang watchdog.
                if self.try_recover() {
                    continue; // rolled back; replay
                }
                break;
            }
            if self.hung || self.all_done() {
                break;
            }
        }
        if self.recovery_attempts > 0
            && !self.unrecoverable
            && self.all_done()
            && self.violations.is_empty()
        {
            if let Some(ring) = self.recovery_ring.as_mut() {
                ring.set_now(self.cluster.now());
                ring.record(CheckerEvent::RecoveryCompleted {
                    attempt: self.recovery_attempts,
                });
            }
        }
        self.report()
    }

    /// Attempts rollback/replay after a detection. Returns `true` when
    /// the machine was restored to a pre-error checkpoint and the run
    /// should continue, `false` when recovery is off or gave up (the
    /// caller stops; the report carries the preserved first detection and
    /// its forensics).
    fn try_recover(&mut self) -> bool {
        let Some(policy) = self.cfg.recovery else {
            return false;
        };
        let (Some(plan), Some(injected_at)) = (self.cfg.fault, self.fault_injected_at) else {
            return false;
        };
        let now = self.cluster.now();
        // Preserve the first detection: rollback rewinds the live
        // evidence, but the report must still attest what was caught and
        // when.
        if self.recovery_detection.is_none() {
            self.recovery_detection = Some(Detection {
                fault: plan.fault,
                injected_at,
                detected_at: now,
                violation: self.violations.first().cloned(),
                recoverable: self
                    .ber
                    .as_ref()
                    .is_some_and(|b| b.recoverable(injected_at, now)),
            });
        }
        // Forensics likewise: captured before restore, while the rings
        // still hold the events leading up to the violation.
        if self.cfg.obs_capacity > 0 && self.recovery_forensics.is_none() {
            let node = self.attribute_node();
            self.recovery_forensics = Some(ViolationReport {
                violation: self.violations.first().cloned(),
                trace: self.node_obs_trace(node.index()),
                cycle: now,
                node,
            });
        }
        if self.recovery_attempts >= policy.max_retries {
            // Retries exhausted. No restore: the final violations and
            // rings stay in place, so report() renders fresh forensics
            // for the unrecoverable verdict.
            self.unrecoverable = true;
            return false;
        }
        let Some(cp) = self
            .ber
            .as_mut()
            .and_then(|b| b.rollback_to(injected_at, now))
        else {
            self.unrecoverable = true; // error escaped the checkpoint window
            return false;
        };
        let Some(snap) = cp.state else {
            self.unrecoverable = true; // checkpoint predates recovery arming
            return false;
        };
        self.recovery_attempts += 1;
        let attempt = self.recovery_attempts;
        if let Some(ring) = self.recovery_ring.as_mut() {
            ring.set_now(now);
            ring.record(CheckerEvent::RecoveryStarted {
                attempt,
                checkpoint: cp.taken_at,
            });
        }
        // A second attempt means the error survived one clean replay:
        // escalate by widening the checkpoint cadence (cheaper
        // checkpoints, wider window) before trying again.
        if attempt > 1 {
            self.recovery_escalations += 1;
            if let Some(ber) = self.ber.as_mut() {
                ber.widen_interval(policy.backoff_factor);
            }
            if let Some(ring) = self.recovery_ring.as_mut() {
                ring.record(CheckerEvent::RecoveryEscalated { attempt });
            }
        }
        // Restore — squashes everything younger than the checkpoint.
        self.cores = snap.cores;
        self.cluster = snap.cluster;
        self.rng = snap.rng;
        self.progress = snap.progress;
        self.violations.clear();
        self.hung = false;
        self.first_violation_node = None;
        self.recovery_checkpoint = cp.taken_at;
        // An armed-but-unapplied network fault must not re-trip on replay.
        self.cluster.data_net_mut().disarm_fault();
        // A transient fault is gone once its effects are squashed; a
        // persistent one re-arms and will re-manifest during replay.
        self.fault_done = plan.fault.is_transient();
        true
    }

    /// The node a detection is attributed to: the violation names one, or
    /// the core that reported first, or the fault's location.
    fn attribute_node(&self) -> NodeId {
        self.violations
            .first()
            .and_then(violation_node)
            .or(self.first_violation_node.map(nid))
            .or(self.cfg.fault.and_then(|p| p.fault.node()))
            .unwrap_or(NodeId(0))
    }

    /// Assembles the final report (flushes the coherence checker).
    pub fn report(&mut self) -> RunReport {
        let completed = self.all_done();
        // Drain in-flight coherence traffic (informs, acks, writebacks)
        // before the end-of-run audit; the cores are done but the memory
        // system may not be.
        if completed && !self.hung {
            let _ = self.cluster.run_to_quiescence(500_000);
            self.violations.extend(self.cluster.drain_violations());
        }
        let now = self.now();
        // End-of-run audit; skipped when a fault already led to a
        // detection or hang, where in-flight state is expectedly
        // inconsistent and the verdict has been decided.
        if self.cfg.fault.is_none() || (self.violations.is_empty() && !self.hung) {
            self.violations.extend(self.cluster.finish());
        }
        // A hung faulted run takes neither branch above, yet its checkers
        // may already have raised violations that are still sitting in the
        // cluster; drain unconditionally so the verdict sees them
        // (previously they were dropped, demoting checker detections to
        // hang-only detections).
        self.violations.extend(self.cluster.drain_violations());
        let memory_digest = self.cluster.memory_digest();
        // A run that went through recovery reports its *first* detection
        // (rollback rewound the live evidence); otherwise the detection is
        // derived from the final state as before.
        let detection = self.recovery_detection.clone().or(match (self.cfg.fault, self.fault_injected_at) {
            (Some(plan), Some(injected_at)) if !self.violations.is_empty() || self.hung => {
                let recoverable = self
                    .ber
                    .as_ref()
                    .is_some_and(|b| b.recoverable(injected_at, now));
                Some(Detection {
                    fault: plan.fault,
                    injected_at,
                    detected_at: now,
                    violation: self.violations.first().cloned(),
                    recoverable,
                })
            }
            _ => None,
        });
        let recovery = if self.recovery_attempts > 0 || self.unrecoverable {
            Some(RecoveryReport {
                attempts: self.recovery_attempts,
                escalations: self.recovery_escalations,
                checkpoint: self.recovery_checkpoint,
                outcome: if self.unrecoverable {
                    RecoveryOutcome::Unrecoverable
                } else {
                    RecoveryOutcome::Recovered
                },
            })
        } else {
            None
        };
        let obs: Vec<ObsMetrics> = if self.cfg.obs_capacity > 0 {
            (0..self.cfg.nodes).map(|i| self.node_obs_metrics(i)).collect()
        } else {
            Vec::new()
        };
        let first = self.violations.first().cloned();
        let forensics = if self.cfg.obs_capacity > 0 && (first.is_some() || self.hung) {
            let node = self.attribute_node();
            Some(ViolationReport {
                violation: first,
                trace: self.node_obs_trace(node.index()),
                cycle: now,
                node,
            })
        } else {
            // A recovered run's final state is clean; fall back to the
            // forensics captured at the first (recovered) detection.
            self.recovery_forensics.clone()
        };
        RunReport {
            cycles: now,
            transactions: self.cores.iter().map(Core::transactions).sum(),
            completed,
            hung: self.hung,
            violations: self.violations.clone(),
            detection,
            core_stats: self.cores.iter().map(Core::stats).collect(),
            replay_stats: self.cores.iter().map(Core::replay_stats).collect(),
            cache_stats: (0..self.cfg.nodes)
                .map(|i| self.cluster.cache_stats(nid(i)))
                .collect(),
            max_link_bytes: self.cluster.data_net().max_link_bytes(),
            total_bytes: self.cluster.data_net().total_bytes(),
            checker_bytes: self.cluster.checker_bytes(),
            ber_bytes: self.cluster.ber_bytes(),
            obs,
            forensics,
            recovery,
            memory_digest,
            // Cloned, not drained: `commit_logs()` still works after
            // `report()` and vice versa.
            commit_logs: if self.cfg.record_commits {
                self.cores.iter().map(|c| c.commit_log().to_vec()).collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// The node a violation itself names, when it names one (per-processor
/// violations are attributed by which core reported them instead).
fn violation_node(v: &Violation) -> Option<NodeId> {
    match v {
        Violation::Coherence(c) => Some(match c {
            CoherenceViolation::AccessOutsideEpoch { node, .. }
            | CoherenceViolation::EccMismatch { node, .. } => *node,
            CoherenceViolation::EpochOverlap { home, .. }
            | CoherenceViolation::DataPropagation { home, .. }
            | CoherenceViolation::SpuriousClose { home, .. } => *home,
        }),
        Violation::Reorder(_) | Violation::LostOp(_) | Violation::Uniproc(_) => None,
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("nodes", &self.cfg.nodes)
            .field("model", &self.cfg.model)
            .field("protocol", &self.cfg.protocol)
            .field("cycle", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use dvmc_coherence::Msg;
    use dvmc_core::{EpochKind, InformEpoch};
    use dvmc_faults::FaultPlan;
    use dvmc_types::{BlockAddr, Ts16};

    /// Regression: a faulted run that ends in a hang used to skip both
    /// report() drain paths (no quiescence drain because it's hung, no
    /// end-of-run audit because a fault was scheduled), dropping any
    /// violations still sitting in the cluster and demoting a checker
    /// detection to a hang-only detection with `violation: None`.
    #[test]
    fn hung_faulted_run_keeps_cluster_violations() {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        // Plant a checker violation directly at home 0: an Inform-Epoch
        // for a block never requested through this home is flagged by the
        // MET once the sorter releases it.
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        // Tick the cluster directly (not the system) so the violation is
        // raised but never drained into `sys.violations` — the state a
        // mid-run hang leaves behind.
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        assert!(
            !report.violations.is_empty(),
            "cluster violations must survive a hung faulted run"
        );
        let detection = report.detection.expect("fault + hang is a detection");
        assert!(
            detection.violation.is_some(),
            "the checker's violation must reach the detection verdict"
        );
    }

    /// End-to-end observability: an instrumented error-free run reports
    /// per-node metrics with checker activity, and the planted-violation
    /// scenario above yields forensics with a non-empty trace attributed
    /// to the home that detected it.
    #[test]
    fn obs_metrics_and_forensics_flow_into_the_report() {
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Jbb, 2)
            .obs(32)
            .build();
        let report = sys.run_to_completion(2_000_000);
        assert!(report.completed);
        assert_eq!(report.obs.len(), 2, "one metrics entry per node");
        let total: u64 = report.obs.iter().map(|m| m.events).sum();
        assert!(total > 0, "an instrumented run records checker events");
        assert!(report.forensics.is_none(), "no detection, no forensics");
        assert!(!sys.dump().is_empty());

        let mut sys = SystemBuilder::new()
            .nodes(2)
            .obs(32)
            .fault(FaultPlan {
                at_cycle: 0,
                fault: Fault::DropMessage,
            })
            .build();
        sys.cluster.home_mut(NodeId(0)).deliver(Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(0),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(1),
                end: Ts16(2),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        ));
        for _ in 0..4096 {
            sys.cluster.tick();
        }
        sys.hung = true;
        sys.fault_injected_at = Some(1);
        let report = sys.report();
        let forensics = report.forensics.expect("detection with obs enabled");
        assert_eq!(forensics.node, NodeId(0), "attributed to the home");
        assert!(forensics.violation.is_some());
        assert!(
            !forensics.trace.is_empty(),
            "the home's ring retains the events leading up to detection"
        );
        assert!(forensics.chain().contains("crc-check"), "{}", forensics.chain());
    }

    /// The tentpole end-to-end: a transient fault is injected, detected,
    /// rolled back, and replayed — and the recovered run's final memory
    /// (and even its cycle count) is identical to a fault-free golden run
    /// of the same configuration.
    #[test]
    fn transient_fault_recovers_to_the_golden_state() {
        use crate::config::RecoveryPolicy;
        use crate::report::RecoveryOutcome;
        use dvmc_workloads::spec::WorkloadKind;
        let build = |fault: Option<FaultPlan>| {
            let mut b = SystemBuilder::new()
                .nodes(2)
                .workload(WorkloadKind::Jbb, 24)
                .recovery(RecoveryPolicy::default())
                .watchdog(100_000)
                .obs(32)
                .seed(5);
            if let Some(plan) = fault {
                b = b.fault(plan);
            }
            b.build()
        };
        let golden = build(None).run_to_completion(5_000_000);
        assert!(golden.completed && golden.violations.is_empty());
        assert!(golden.recovery.is_none(), "nothing to recover from");

        let plan = FaultPlan {
            at_cycle: 6_000,
            fault: Fault::WbCorruptValue { node: NodeId(1) },
        };
        let report = build(Some(plan)).run_to_completion(5_000_000);
        assert!(report.completed, "replay runs to completion");
        assert!(
            report.violations.is_empty(),
            "no false violations survive rollback/replay: {:?}",
            report.violations
        );
        let rec = report.recovery.expect("a rollback happened");
        assert_eq!(rec.outcome, RecoveryOutcome::Recovered);
        assert!(rec.attempts >= 1);
        assert_eq!(rec.escalations, 0, "first retry needs no escalation");
        let det = report.detection.expect("the fault was detected first");
        assert!(det.recoverable, "within the SafetyNet window");
        assert!(det.violation.is_some() || report.hung);
        assert_eq!(
            report.memory_digest, golden.memory_digest,
            "post-recovery memory must match the fault-free run"
        );
        assert_eq!(report.cycles, golden.cycles, "replay retraces the golden timeline");
        // Recovery observability: events rooted at node 0, forensics of
        // the recovered detection retained.
        assert_eq!(report.obs[0].recoveries_started, u64::from(rec.attempts));
        assert_eq!(report.obs[0].recoveries_completed, 1);
        let forensics = report.forensics.expect("first-detection forensics retained");
        assert!(!forensics.trace.is_empty());
    }

    /// A persistent fault re-manifests on every replay: recovery must
    /// escalate (widening the checkpoint cadence), exhaust its retries,
    /// and report the run unrecoverable with the *first* detection and
    /// its forensics intact — not loop on rollback forever.
    ///
    /// White-box: the injected stuck bit is real and genuinely re-injects
    /// during each replay, but its manifestations are planted (as
    /// watchdog hangs) because organic detection of latent cache
    /// corruption waits on eviction/CRC latency far too long for a unit
    /// test; `exp_recovery` covers the organic end-to-end path.
    #[test]
    fn persistent_fault_exhausts_retries_and_escalates() {
        use crate::config::RecoveryPolicy;
        use crate::report::RecoveryOutcome;
        use dvmc_workloads::spec::WorkloadKind;
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Oltp, u64::MAX / 2)
            .recovery(RecoveryPolicy {
                max_retries: 2,
                backoff_factor: 2,
            })
            .watchdog(100_000)
            .obs(32)
            .seed(5)
            .fault(FaultPlan {
                at_cycle: 2_000,
                fault: Fault::CacheStuckBit { node: NodeId(1) },
            })
            .build();
        fn run_until(sys: &mut System, cycle: Cycle) {
            while sys.now() < cycle {
                sys.tick();
            }
        }
        run_until(&mut sys, 30_000);
        assert!(sys.fault_done, "the stuck bit was injected");
        // First manifestation.
        sys.hung = true;
        assert!(sys.try_recover(), "first retry rolls back");
        assert_eq!(sys.recovery_attempts, 1);
        assert!(!sys.hung, "rollback clears the hang");
        assert_eq!(sys.now(), 0, "only the initial checkpoint predates the fault");
        assert!(!sys.fault_done, "persistent: the defect re-arms for replay");
        run_until(&mut sys, 30_000);
        assert!(sys.fault_done, "the stuck bit re-manifested during replay");
        // Second manifestation: escalation kicks in.
        sys.hung = true;
        assert!(sys.try_recover(), "second retry still rolls back");
        assert_eq!(sys.recovery_attempts, 2);
        assert_eq!(sys.recovery_escalations, 1);
        assert_eq!(
            sys.ber.as_ref().unwrap().config().checkpoint_interval,
            2 * sys.cfg.ber.checkpoint_interval,
            "escalation widened the checkpoint cadence"
        );
        run_until(&mut sys, 30_000);
        // Third manifestation: retries are exhausted.
        sys.hung = true;
        assert!(!sys.try_recover(), "retries exhausted: recovery gives up");
        let report = sys.report();
        let rec = report.recovery.expect("recovery ran");
        assert_eq!(rec.outcome, RecoveryOutcome::Unrecoverable);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.escalations, 1);
        assert!(report.hung, "the final manifestation is still on record");
        let det = report.detection.expect("the first detection is preserved");
        assert_eq!(det.detected_at, 30_000, "detection time of the FIRST manifestation");
        assert!(det.recoverable, "recoverable at detection, yet persistent");
        let forensics = report.forensics.expect("unrecoverable verdict carries forensics");
        assert!(!forensics.trace.is_empty());
        assert_eq!(report.obs[0].recoveries_started, 2);
        assert_eq!(report.obs[0].recovery_escalations, 1);
        assert_eq!(report.obs[0].recoveries_completed, 0);
    }
}
