//! # SafetyNet-style backward error recovery (BER)
//!
//! DVMC detects errors; recovery is delegated to a checkpoint-based BER
//! mechanism (§3, §5). The paper uses SafetyNet: the system periodically
//! takes lightweight global checkpoints, which become *validated* once all
//! operations in flight at checkpoint time have settled; a bounded log
//! keeps the last few checkpoints, giving a recovery window of roughly
//! 100k processor cycles. An error is recoverable iff it is detected while
//! a checkpoint predating it is still held (§6.1 verifies all injected
//! errors are detected "well within the SafetyNet recovery time frame").
//!
//! This crate models exactly the behaviour the evaluation depends on:
//! checkpoint cadence, validation latency, log capacity, the derived
//! recovery window, and the per-checkpoint coordination traffic the
//! simulator charges to the interconnect. Full state snapshotting is not
//! modelled (the paper treats BER as an orthogonal, pluggable mechanism —
//! ReVive would work equally well).

use dvmc_types::Cycle;
use std::collections::VecDeque;

/// SafetyNet configuration.
#[derive(Clone, Copy, Debug)]
pub struct SafetyNetConfig {
    /// Cycles between checkpoint creations.
    pub checkpoint_interval: u64,
    /// Cycles until a new checkpoint is validated (all in-flight
    /// operations at creation time have settled).
    pub validation_latency: u64,
    /// Number of checkpoints the log can hold.
    pub max_checkpoints: usize,
    /// Wire bytes of per-node coordination traffic per checkpoint.
    pub coordination_bytes: u32,
}

impl Default for SafetyNetConfig {
    fn default() -> Self {
        SafetyNetConfig {
            checkpoint_interval: 5_000,
            validation_latency: 10_000,
            max_checkpoints: 20,
            coordination_bytes: 16,
        }
    }
}

impl SafetyNetConfig {
    /// The nominal recovery window: how far in the past the oldest held
    /// checkpoint reaches once the log is warm.
    pub fn recovery_window(&self) -> u64 {
        self.checkpoint_interval * self.max_checkpoints as u64
    }
}

#[derive(Clone, Copy, Debug)]
struct Checkpoint {
    taken_at: Cycle,
}

/// Events the simulator reacts to (traffic accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BerEvent {
    /// A checkpoint was created; each node exchanges coordination
    /// messages of [`SafetyNetConfig::coordination_bytes`].
    CheckpointTaken {
        /// Creation time.
        at: Cycle,
    },
}

/// The global SafetyNet state (one instance per system; SafetyNet
/// checkpoints are globally coordinated in logical time).
#[derive(Clone, Debug)]
pub struct SafetyNet {
    cfg: SafetyNetConfig,
    checkpoints: VecDeque<Checkpoint>,
    last_checkpoint: Cycle,
    taken: u64,
    reclaimed: u64,
}

impl SafetyNet {
    /// Creates the recovery mechanism with an initial checkpoint at time 0.
    pub fn new(cfg: SafetyNetConfig) -> Self {
        let mut checkpoints = VecDeque::new();
        checkpoints.push_back(Checkpoint { taken_at: 0 });
        SafetyNet {
            cfg,
            checkpoints,
            last_checkpoint: 0,
            taken: 1,
            reclaimed: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SafetyNetConfig {
        &self.cfg
    }

    /// Advances to `now`; returns a [`BerEvent`] when a checkpoint is
    /// created this cycle.
    pub fn tick(&mut self, now: Cycle) -> Option<BerEvent> {
        if now < self.last_checkpoint + self.cfg.checkpoint_interval {
            return None;
        }
        self.last_checkpoint = now;
        self.taken += 1;
        self.checkpoints.push_back(Checkpoint { taken_at: now });
        // Reclaim the log: keep at most `max_checkpoints`.
        while self.checkpoints.len() > self.cfg.max_checkpoints {
            self.checkpoints.pop_front();
            self.reclaimed += 1;
        }
        Some(BerEvent::CheckpointTaken { at: now })
    }

    /// Whether a checkpoint `c` is validated at time `now`.
    fn validated(&self, c: &Checkpoint, now: Cycle) -> bool {
        c.taken_at + self.cfg.validation_latency <= now || c.taken_at == 0
    }

    /// The newest validated checkpoint that predates `error_time`, as seen
    /// at time `now` — the recovery point for an error at `error_time`
    /// detected at `now`. `None` means the error escaped the recovery
    /// window and is unrecoverable.
    pub fn recovery_point(&self, error_time: Cycle, now: Cycle) -> Option<Cycle> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.taken_at <= error_time && self.validated(c, now))
            .map(|c| c.taken_at)
    }

    /// Whether an error occurring at `error_time` and detected at `now`
    /// can be recovered.
    pub fn recoverable(&self, error_time: Cycle, now: Cycle) -> bool {
        self.recovery_point(error_time, now).is_some()
    }

    /// Checkpoints created so far.
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken
    }

    /// Checkpoints reclaimed (log wrap).
    pub fn checkpoints_reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// The oldest held checkpoint's creation time.
    pub fn oldest_checkpoint(&self) -> Cycle {
        self.checkpoints.front().map_or(0, |c| c.taken_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> SafetyNet {
        SafetyNet::new(SafetyNetConfig {
            checkpoint_interval: 100,
            validation_latency: 150,
            max_checkpoints: 4,
            coordination_bytes: 16,
        })
    }

    #[test]
    fn checkpoints_fire_on_interval() {
        let mut sn = net();
        let mut events = 0;
        for now in 1..=1000 {
            if sn.tick(now).is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 10);
        assert_eq!(sn.checkpoints_taken(), 11, "plus the initial checkpoint");
    }

    #[test]
    fn log_is_bounded() {
        let mut sn = net();
        for now in 1..=2000 {
            sn.tick(now);
        }
        assert!(sn.checkpoints_reclaimed() > 0);
        // Oldest held checkpoint is within the window.
        assert!(sn.oldest_checkpoint() >= 2000 - sn.config().recovery_window());
    }

    #[test]
    fn recent_error_is_recoverable() {
        let mut sn = net();
        for now in 1..=1000 {
            sn.tick(now);
        }
        // Error at 950 detected at 1000: the checkpoint at 900 is not yet
        // validated (validation takes 150); 800 is (800+150 <= 1000).
        assert_eq!(sn.recovery_point(950, 1000), Some(800));
        assert!(sn.recoverable(950, 1000));
    }

    #[test]
    fn stale_error_escapes_the_window() {
        let mut sn = net();
        for now in 1..=10_000 {
            sn.tick(now);
        }
        // The log holds only the last 4 checkpoints (~400 cycles).
        assert!(!sn.recoverable(5_000, 10_000), "error is 5k cycles old");
        assert!(sn.recoverable(9_950, 10_000));
    }

    #[test]
    fn initial_checkpoint_covers_early_errors() {
        let sn = net();
        assert_eq!(sn.recovery_point(10, 20), Some(0));
    }

    #[test]
    fn window_accounting() {
        let cfg = SafetyNetConfig::default();
        assert_eq!(cfg.recovery_window(), 100_000, "paper's ~100k cycle window");
    }
}
