//! # SafetyNet-style backward error recovery (BER)
//!
//! DVMC detects errors; recovery is delegated to a checkpoint-based BER
//! mechanism (§3, §5). The paper uses SafetyNet: the system periodically
//! takes lightweight global checkpoints, which become *validated* once all
//! operations in flight at checkpoint time have settled; a bounded log
//! keeps the last few checkpoints, giving a recovery window of roughly
//! 100k processor cycles. An error is recoverable iff it is detected while
//! a checkpoint predating it is still held (§6.1 verifies all injected
//! errors are detected "well within the SafetyNet recovery time frame").
//!
//! This crate models the behaviour the evaluation depends on — checkpoint
//! cadence, validation latency, log capacity, the derived recovery window,
//! and the per-checkpoint coordination traffic the simulator charges to
//! the interconnect — and, beyond the timing model, a *real* checkpoint
//! log: [`SafetyNet`] is generic over a snapshot payload `S`, so the
//! simulator stores full system snapshots in the log and
//! [`rollback_to`](SafetyNet::rollback_to) hands back the state to
//! restore. The paper treats BER as an orthogonal, pluggable mechanism
//! (ReVive would work equally well); the log-and-rollback contract here is
//! exactly what either provides.

use dvmc_types::Cycle;
use std::collections::VecDeque;

/// SafetyNet configuration.
#[derive(Clone, Copy, Debug)]
pub struct SafetyNetConfig {
    /// Cycles between checkpoint creations.
    pub checkpoint_interval: u64,
    /// Cycles until a new checkpoint is validated (all in-flight
    /// operations at creation time have settled).
    pub validation_latency: u64,
    /// Number of checkpoints the log can hold.
    pub max_checkpoints: usize,
    /// Wire bytes of per-node coordination traffic per checkpoint.
    pub coordination_bytes: u32,
}

impl Default for SafetyNetConfig {
    fn default() -> Self {
        SafetyNetConfig {
            checkpoint_interval: 5_000,
            validation_latency: 10_000,
            max_checkpoints: 20,
            coordination_bytes: 16,
        }
    }
}

/// A rejected SafetyNet configuration (mirrors how
/// `dvmc_sim::ConfigError` refuses invalid system configurations up
/// front instead of misbehaving silently later).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BerConfigError {
    /// `checkpoint_interval` was zero: the cadence loop would never
    /// advance.
    ZeroInterval,
    /// `max_checkpoints` was zero: the log could never hold a recovery
    /// point.
    NoCheckpoints,
    /// `validation_latency >= recovery_window()`: every checkpoint is
    /// reclaimed before it can validate, so once the initial checkpoint
    /// leaves the log, `recoverable()` is silently always false.
    ValidationExceedsWindow {
        /// The configured validation latency.
        validation_latency: u64,
        /// The window it must stay below.
        recovery_window: u64,
    },
}

impl std::fmt::Display for BerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BerConfigError::ZeroInterval => {
                write!(f, "checkpoint interval must be positive")
            }
            BerConfigError::NoCheckpoints => {
                write!(f, "the checkpoint log needs capacity for at least one checkpoint")
            }
            BerConfigError::ValidationExceedsWindow {
                validation_latency,
                recovery_window,
            } => write!(
                f,
                "validation latency {validation_latency} reaches the recovery window \
                 {recovery_window}: no held checkpoint could ever validate"
            ),
        }
    }
}

impl std::error::Error for BerConfigError {}

impl SafetyNetConfig {
    /// The nominal recovery window: how far in the past the oldest held
    /// checkpoint reaches once the log is warm.
    pub fn recovery_window(&self) -> u64 {
        self.checkpoint_interval * self.max_checkpoints as u64
    }

    /// Checks the configuration's structural invariants; every entry
    /// point that builds a [`SafetyNet`] goes through this.
    pub fn validate(&self) -> Result<(), BerConfigError> {
        if self.checkpoint_interval == 0 {
            return Err(BerConfigError::ZeroInterval);
        }
        if self.max_checkpoints == 0 {
            return Err(BerConfigError::NoCheckpoints);
        }
        if self.validation_latency >= self.recovery_window() {
            return Err(BerConfigError::ValidationExceedsWindow {
                validation_latency: self.validation_latency,
                recovery_window: self.recovery_window(),
            });
        }
        Ok(())
    }
}

/// One entry of the checkpoint log: when it was taken and the snapshot it
/// holds. `S = ()` degenerates to the pure timing model.
#[derive(Clone, Debug)]
pub struct Checkpoint<S> {
    /// Creation time.
    pub taken_at: Cycle,
    /// The snapshotted state.
    pub state: S,
}

/// The global SafetyNet state (one instance per system; SafetyNet
/// checkpoints are globally coordinated in logical time).
///
/// Generic over the snapshot payload `S`: the simulator stores deep
/// copies of the whole machine, tests and cost models use `S = ()`.
#[derive(Clone, Debug)]
pub struct SafetyNet<S = ()> {
    cfg: SafetyNetConfig,
    checkpoints: VecDeque<Checkpoint<S>>,
    last_checkpoint: Cycle,
    taken: u64,
    reclaimed: u64,
    rollbacks: u64,
}

impl SafetyNet<()> {
    /// Creates the pure timing model with an initial checkpoint at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SafetyNetConfig::validate`];
    /// use [`SafetyNet::with_initial`] to handle the error instead.
    pub fn new(cfg: SafetyNetConfig) -> Self {
        SafetyNet::with_initial(cfg, ())
            .unwrap_or_else(|e| panic!("invalid SafetyNet configuration: {e}"))
    }

    /// Advances to `now`; returns how many checkpoints were created
    /// (under monotone per-cycle ticking: 0 or 1).
    pub fn tick(&mut self, now: Cycle) -> usize {
        self.tick_with(now, || ())
    }
}

impl<S> SafetyNet<S> {
    /// Creates the recovery mechanism, seeding the log with an initial
    /// checkpoint of `initial` at time 0, after validating `cfg`.
    pub fn with_initial(cfg: SafetyNetConfig, initial: S) -> Result<Self, BerConfigError> {
        cfg.validate()?;
        let mut checkpoints = VecDeque::new();
        checkpoints.push_back(Checkpoint {
            taken_at: 0,
            state: initial,
        });
        Ok(SafetyNet {
            cfg,
            checkpoints,
            last_checkpoint: 0,
            taken: 1,
            reclaimed: 0,
            rollbacks: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SafetyNetConfig {
        &self.cfg
    }

    /// The cycle at which the next checkpoint falls due — the event an
    /// event-scheduled simulation kernel must not skip past. Under the
    /// cadence loop of [`tick_with`](Self::tick_with) this is always
    /// `last_checkpoint + checkpoint_interval` (rewound by rollback,
    /// widened by escalation).
    pub fn next_checkpoint_at(&self) -> Cycle {
        self.last_checkpoint.saturating_add(self.cfg.checkpoint_interval)
    }

    /// Advances to `now`, calling `snapshot` for every checkpoint due and
    /// stamping each at its interval-aligned boundary. Returns how many
    /// checkpoints were created.
    ///
    /// A single call that jumps past several intervals takes *all* the
    /// missed checkpoints (a coarse ticker used to take only one, silently
    /// stretching the recovery window). Note that under coarse ticking the
    /// snapshots of the missed boundaries are all taken from the *current*
    /// state; callers that store real state in `S` must tick once per
    /// cycle so every checkpoint's snapshot matches its stamp — the
    /// simulator does, and `rollback_to` relies on it.
    pub fn tick_with(&mut self, now: Cycle, mut snapshot: impl FnMut() -> S) -> usize {
        let mut created = 0;
        while now >= self.last_checkpoint + self.cfg.checkpoint_interval {
            self.last_checkpoint += self.cfg.checkpoint_interval;
            self.taken += 1;
            created += 1;
            self.checkpoints.push_back(Checkpoint {
                taken_at: self.last_checkpoint,
                state: snapshot(),
            });
            // Reclaim the log: keep at most `max_checkpoints`.
            while self.checkpoints.len() > self.cfg.max_checkpoints {
                self.checkpoints.pop_front();
                self.reclaimed += 1;
            }
        }
        created
    }

    /// Like [`tick_with`](Self::tick_with), but hands back the log
    /// entries reclaimed by this advance (oldest first) instead of
    /// dropping them. Log-based incremental checkpointing needs them: a
    /// reclaimed *delta* still carries the only images of the parts it
    /// touched, so the caller folds each into its base snapshot before
    /// letting it go — dropping it would leave the oldest surviving
    /// delta dangling over a base that postdates it.
    pub fn tick_with_reclaimed(
        &mut self,
        now: Cycle,
        mut snapshot: impl FnMut() -> S,
    ) -> Vec<Checkpoint<S>> {
        let mut reclaimed = Vec::new();
        while now >= self.last_checkpoint + self.cfg.checkpoint_interval {
            self.last_checkpoint += self.cfg.checkpoint_interval;
            self.taken += 1;
            self.checkpoints.push_back(Checkpoint {
                taken_at: self.last_checkpoint,
                state: snapshot(),
            });
            while self.checkpoints.len() > self.cfg.max_checkpoints {
                if let Some(cp) = self.checkpoints.pop_front() {
                    reclaimed.push(cp);
                }
                self.reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Rolls back through a caller-supplied reconstruction instead of a
    /// clone: finds the recovery point for an error at `error_time`
    /// detected at `now`, hands `reconstruct` the *whole log* (oldest
    /// first) plus the recovery point's index — an incremental-checkpoint
    /// log needs every entry up to that index to rebuild the state, not
    /// just the entry itself — then drops the poisoned younger entries
    /// and rewinds the cadence clock exactly like
    /// [`rollback_to`](Self::rollback_to). Returns the recovery cycle
    /// and whatever `reconstruct` produced, or `None` if the error
    /// escaped the window (in which case nothing is called or changed).
    pub fn rollback_via<R>(
        &mut self,
        error_time: Cycle,
        now: Cycle,
        reconstruct: impl FnOnce(&[Checkpoint<S>], usize) -> R,
    ) -> Option<(Cycle, R)> {
        let idx = self
            .checkpoints
            .iter()
            .rposition(|c| c.taken_at <= error_time && self.validated(c.taken_at, now))?;
        let entries = self.checkpoints.make_contiguous();
        let taken_at = entries[idx].taken_at;
        let result = reconstruct(entries, idx);
        self.checkpoints.truncate(idx + 1);
        self.last_checkpoint = taken_at;
        self.rollbacks += 1;
        Some((taken_at, result))
    }

    /// Whether a checkpoint taken at `taken_at` is validated at `now`
    /// (the initial time-0 checkpoint is valid by construction: nothing
    /// was in flight).
    fn validated(&self, taken_at: Cycle, now: Cycle) -> bool {
        taken_at + self.cfg.validation_latency <= now || taken_at == 0
    }

    /// The newest validated checkpoint that predates `error_time`, as seen
    /// at time `now` — the recovery point for an error at `error_time`
    /// detected at `now`. `None` means the error escaped the recovery
    /// window and is unrecoverable.
    pub fn recovery_point(&self, error_time: Cycle, now: Cycle) -> Option<Cycle> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.taken_at <= error_time && self.validated(c.taken_at, now))
            .map(|c| c.taken_at)
    }

    /// Whether an error occurring at `error_time` and detected at `now`
    /// can be recovered.
    pub fn recoverable(&self, error_time: Cycle, now: Cycle) -> bool {
        self.recovery_point(error_time, now).is_some()
    }

    /// Widens the checkpoint interval by `factor` (at least 2x) — retry
    /// escalation back-off: when an error recurs after rollback, a longer
    /// interval widens the recovery window and cuts checkpoint overhead
    /// while the system limps toward a verdict. Widening the interval
    /// preserves the [`validate`](SafetyNetConfig::validate) invariant
    /// (the window only grows).
    pub fn widen_interval(&mut self, factor: u64) {
        self.cfg.checkpoint_interval = self
            .cfg
            .checkpoint_interval
            .saturating_mul(factor.max(2));
    }

    /// Restores the checkpoint interval to `interval` — de-escalation
    /// after a recovered episode in service mode: the widened cadence a
    /// persistent-looking error forced should not be paid forever once
    /// the machine is demonstrably healthy again. Narrowing only (the
    /// complement of [`widen_interval`](Self::widen_interval)); a value
    /// at or above the current interval, or one that would invalidate
    /// the configuration, is ignored.
    pub fn narrow_interval(&mut self, interval: u64) {
        if interval >= self.cfg.checkpoint_interval {
            return;
        }
        let narrowed = SafetyNetConfig {
            checkpoint_interval: interval,
            ..self.cfg
        };
        if narrowed.validate().is_ok() {
            self.cfg.checkpoint_interval = interval;
        }
    }

    /// Checkpoints created so far.
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken
    }

    /// Checkpoints reclaimed (log wrap).
    pub fn checkpoints_reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Rollbacks performed.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// The oldest held checkpoint's creation time.
    pub fn oldest_checkpoint(&self) -> Cycle {
        self.checkpoints.front().map_or(0, |c| c.taken_at)
    }
}

impl<S: Clone> SafetyNet<S> {
    /// Rolls back: returns a copy of the recovery checkpoint for an error
    /// at `error_time` detected at `now`, or `None` if the error escaped
    /// the window.
    ///
    /// Every checkpoint *younger* than the recovery point is discarded —
    /// those snapshots postdate the error and may embed its corruption
    /// (they are poisoned). The recovery point itself stays in the log (a
    /// recurring error can roll back to it again), and the cadence clock
    /// rewinds to it so replay re-takes checkpoints from there; without
    /// the rewind, replayed time (which restarts at the checkpoint) would
    /// sit permanently behind `last_checkpoint` and no checkpoint would
    /// ever be taken again.
    pub fn rollback_to(&mut self, error_time: Cycle, now: Cycle) -> Option<Checkpoint<S>> {
        self.rollback_via(error_time, now, |entries, idx| entries[idx].state.clone())
            .map(|(taken_at, state)| Checkpoint { taken_at, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> SafetyNetConfig {
        SafetyNetConfig {
            checkpoint_interval: 100,
            validation_latency: 150,
            max_checkpoints: 4,
            coordination_bytes: 16,
        }
    }

    fn net() -> SafetyNet {
        SafetyNet::new(cfg())
    }

    #[test]
    fn checkpoints_fire_on_interval() {
        let mut sn = net();
        let mut events = 0;
        for now in 1..=1000 {
            events += sn.tick(now);
        }
        assert_eq!(events, 10);
        assert_eq!(sn.checkpoints_taken(), 11, "plus the initial checkpoint");
    }

    #[test]
    fn log_is_bounded() {
        let mut sn = net();
        for now in 1..=2000 {
            sn.tick(now);
        }
        assert!(sn.checkpoints_reclaimed() > 0);
        // Oldest held checkpoint is within the window.
        assert!(sn.oldest_checkpoint() >= 2000 - sn.config().recovery_window());
    }

    #[test]
    fn recent_error_is_recoverable() {
        let mut sn = net();
        for now in 1..=1000 {
            sn.tick(now);
        }
        // Error at 950 detected at 1000: the checkpoint at 900 is not yet
        // validated (validation takes 150); 800 is (800+150 <= 1000).
        assert_eq!(sn.recovery_point(950, 1000), Some(800));
        assert!(sn.recoverable(950, 1000));
    }

    #[test]
    fn stale_error_escapes_the_window() {
        let mut sn = net();
        for now in 1..=10_000 {
            sn.tick(now);
        }
        // The log holds only the last 4 checkpoints (~400 cycles).
        assert!(!sn.recoverable(5_000, 10_000), "error is 5k cycles old");
        assert!(sn.recoverable(9_950, 10_000));
    }

    #[test]
    fn initial_checkpoint_covers_early_errors() {
        let sn = net();
        assert_eq!(sn.recovery_point(10, 20), Some(0));
    }

    #[test]
    fn window_accounting() {
        let cfg = SafetyNetConfig::default();
        assert_eq!(cfg.recovery_window(), 100_000, "paper's ~100k cycle window");
        cfg.validate().expect("the paper default is valid");
    }

    /// Regression: a coarse tick that jumps past several intervals used to
    /// take a single checkpoint stamped at `now`, stretching the recovery
    /// window (the log's span covered fewer, sparser checkpoints than
    /// configured). All missed boundaries are now taken.
    #[test]
    fn coarse_tick_takes_every_missed_checkpoint() {
        let mut sn = net();
        assert_eq!(sn.tick(450), 4, "boundaries 100..=400 were all due");
        assert_eq!(sn.checkpoints_taken(), 5);
        // Checkpoints are stamped at their aligned boundaries, not at
        // `now`, so the cadence — and the window — never drifts.
        assert_eq!(sn.recovery_point(450, 1000), Some(400));
        // A per-cycle ticker over the same span agrees exactly.
        let mut fine = net();
        let mut fine_events = 0;
        for now in 1..=450 {
            fine_events += fine.tick(now);
        }
        assert_eq!(fine_events, 4);
        assert_eq!(fine.oldest_checkpoint(), sn.oldest_checkpoint());
    }

    #[test]
    fn rollback_returns_the_recovery_state_and_drops_poisoned_checkpoints() {
        let mut sn: SafetyNet<u64> = SafetyNet::with_initial(cfg(), 0).unwrap();
        for now in 1..=1000 {
            // Snapshot payload = the boundary cycle, so the returned state
            // is checkable.
            sn.tick_with(now, || now);
        }
        // Error at 950 detected at 1000 recovers to the checkpoint at 800.
        let cp = sn.rollback_to(950, 1000).expect("within the window");
        assert_eq!(cp.taken_at, 800);
        assert_eq!(cp.state, 800);
        assert_eq!(sn.rollbacks(), 1);
        // The poisoned checkpoints (900, 1000) are gone; the recovery
        // point remains and replay re-takes checkpoints from there.
        assert_eq!(sn.recovery_point(u64::MAX, u64::MAX), Some(800));
        assert_eq!(sn.tick_with(900, || 900), 1, "cadence rewound to 800");
        // A second error can roll back to the same checkpoint.
        let again = sn.rollback_to(850, 2000).expect("recovery point retained");
        assert_eq!(again.taken_at, 800);
    }

    #[test]
    fn next_checkpoint_tracks_cadence_rollback_and_escalation() {
        let mut sn: SafetyNet<u64> = SafetyNet::with_initial(cfg(), 0).unwrap();
        assert_eq!(sn.next_checkpoint_at(), 100);
        sn.tick_with(250, || 0);
        assert_eq!(sn.next_checkpoint_at(), 300);
        // Ticking exactly at the predicted cycle takes exactly one.
        assert_eq!(sn.tick_with(sn.next_checkpoint_at(), || 0), 1);
        assert_eq!(sn.next_checkpoint_at(), 400);
        sn.widen_interval(2);
        assert_eq!(sn.next_checkpoint_at(), 500);
        for now in 400..=1000 {
            sn.tick_with(now, || 0);
        }
        sn.rollback_to(950, 1000).expect("in window");
        assert_eq!(sn.next_checkpoint_at(), 700 + 200, "cadence rewound to 700");
    }

    #[test]
    fn tick_with_reclaimed_hands_back_evicted_entries_oldest_first() {
        let mut sn: SafetyNet<u64> = SafetyNet::with_initial(cfg(), 0).unwrap();
        // Log capacity 4: the first three advances evict nothing.
        assert!(sn.tick_with_reclaimed(300, || 1).is_empty());
        assert_eq!(sn.checkpoints_reclaimed(), 0);
        // Jumping past several boundaries reclaims every overflow entry,
        // oldest first, instead of dropping them.
        let evicted = sn.tick_with_reclaimed(700, || 2);
        let stamps: Vec<Cycle> = evicted.iter().map(|c| c.taken_at).collect();
        assert_eq!(stamps, vec![0, 100, 200, 300]);
        assert_eq!(sn.checkpoints_reclaimed(), 4);
        assert_eq!(sn.oldest_checkpoint(), 400);
    }

    #[test]
    fn rollback_via_reconstructs_from_the_log_prefix() {
        let mut sn: SafetyNet<u64> = SafetyNet::with_initial(cfg(), 0).unwrap();
        for now in 1..=1000 {
            sn.tick_with(now, || now);
        }
        // Error at 950 detected at 1000: recovery point is 800, and the
        // reconstruction sees the whole surviving log up to it.
        let (taken_at, replayed) = sn
            .rollback_via(950, 1000, |entries, idx| {
                assert_eq!(entries[idx].taken_at, 800);
                entries[..=idx].iter().map(|c| c.state).sum::<u64>()
            })
            .expect("within the window");
        assert_eq!(taken_at, 800);
        assert_eq!(replayed, 700 + 800, "window holds 700..=1000, poison excluded");
        assert_eq!(sn.rollbacks(), 1);
        // Poisoned entries are gone, the cadence clock rewound.
        assert_eq!(sn.recovery_point(u64::MAX, u64::MAX), Some(800));
        assert_eq!(sn.next_checkpoint_at(), 900);
        // Outside the window: the closure never runs, nothing changes.
        let missed = sn.rollback_via(0, 5_000, |_, _| panic!("must not reconstruct"));
        assert!(missed.is_none());
        assert_eq!(sn.rollbacks(), 1);
    }

    #[test]
    fn rollback_outside_the_window_fails() {
        let mut sn: SafetyNet<u64> = SafetyNet::with_initial(cfg(), 0).unwrap();
        for now in 1..=10_000 {
            sn.tick_with(now, || now);
        }
        assert!(sn.rollback_to(5_000, 10_000).is_none());
        assert_eq!(sn.rollbacks(), 0);
    }

    #[test]
    fn widen_interval_backs_off() {
        let mut sn = net();
        sn.widen_interval(2);
        assert_eq!(sn.config().checkpoint_interval, 200);
        assert_eq!(sn.config().recovery_window(), 800);
        sn.widen_interval(0); // clamped to at least 2x
        assert_eq!(sn.config().checkpoint_interval, 400);
        let mut events = 0;
        for now in 1..=1200 {
            events += sn.tick(now);
        }
        assert_eq!(events, 3, "wider cadence: 400, 800, 1200");
    }

    #[test]
    fn narrow_interval_deescalates_but_never_invalidates() {
        let mut sn = net();
        sn.widen_interval(4);
        assert_eq!(sn.config().checkpoint_interval, 400);
        sn.narrow_interval(100);
        assert_eq!(sn.config().checkpoint_interval, 100);
        // Never widens, never accepts zero, never breaks the
        // validation-latency invariant (150 < interval * 4 requires
        // interval > 37).
        sn.narrow_interval(500);
        assert_eq!(sn.config().checkpoint_interval, 100);
        sn.narrow_interval(0);
        assert_eq!(sn.config().checkpoint_interval, 100);
        sn.narrow_interval(30);
        assert_eq!(sn.config().checkpoint_interval, 100, "window must stay validatable");
    }

    #[test]
    fn invalid_configs_are_refused() {
        let zero_interval = SafetyNetConfig {
            checkpoint_interval: 0,
            ..cfg()
        };
        assert_eq!(zero_interval.validate(), Err(BerConfigError::ZeroInterval));
        let no_log = SafetyNetConfig {
            max_checkpoints: 0,
            ..cfg()
        };
        assert_eq!(no_log.validate(), Err(BerConfigError::NoCheckpoints));
        let unvalidatable = SafetyNetConfig {
            validation_latency: 400, // == recovery_window()
            ..cfg()
        };
        assert_eq!(
            unvalidatable.validate(),
            Err(BerConfigError::ValidationExceedsWindow {
                validation_latency: 400,
                recovery_window: 400,
            })
        );
        assert!(unvalidatable.to_owned().validate().unwrap_err().to_string().contains("400"));
        assert!(SafetyNet::<u32>::with_initial(unvalidatable, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid SafetyNet configuration")]
    fn new_panics_on_invalid_config() {
        let _ = SafetyNet::new(SafetyNetConfig {
            checkpoint_interval: 0,
            ..SafetyNetConfig::default()
        });
    }

    proptest! {
        /// Over the whole config space: `validate()` accepts exactly the
        /// configurations under which a warm SafetyNet can still recover a
        /// just-detected error — the satellite invariant that
        /// `validation_latency < recovery_window()` is not just a lint but
        /// the precise boundary of "recoverable() is silently always
        /// false".
        #[test]
        fn validated_configs_keep_fresh_errors_recoverable(
            checkpoint_interval in 0u64..2_000,
            validation_latency in 0u64..50_000,
            max_checkpoints in 0usize..16,
        ) {
            let cfg = SafetyNetConfig {
                checkpoint_interval,
                validation_latency,
                max_checkpoints,
                coordination_bytes: 16,
            };
            match cfg.validate() {
                Ok(()) => {
                    prop_assert!(checkpoint_interval > 0);
                    prop_assert!(max_checkpoints > 0);
                    prop_assert!(validation_latency < cfg.recovery_window());
                    // Warm the log far past both the window and the
                    // validation latency, then detect an error the same
                    // cycle it occurs: a validated checkpoint must be held.
                    let mut sn = SafetyNet::new(cfg);
                    let horizon = 3 * (cfg.recovery_window() + validation_latency) + 1;
                    for now in 1..=horizon {
                        sn.tick(now);
                    }
                    prop_assert!(
                        sn.recoverable(horizon, horizon),
                        "valid config failed to recover a fresh error: {cfg:?}"
                    );
                }
                Err(_) => {
                    // Rejected configs are degenerate (no cadence, no log)
                    // or have an unvalidatable window.
                    prop_assert!(
                        checkpoint_interval == 0
                            || max_checkpoints == 0
                            || validation_latency >= cfg.recovery_window()
                    );
                }
            }
        }
    }
}
