//! Ordering tables for the supported consistency models (Tables 1–4).

use crate::membar::MembarMask;
use crate::op::{OpClass, OpKind};
use std::fmt;

/// One entry of an ordering table: does an ordering constraint exist
/// between a *first* operation type (row) and a *second* operation type
/// (column)?
///
/// Entries involving membars hold masks rather than booleans (§4); the
/// constraint holds when the relevant instruction's mask ANDed with the
/// table mask is non-zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Requirement {
    /// No ordering constraint.
    Never,
    /// Unconditional ordering constraint.
    Always,
    /// Constraint iff the *first* operation (a membar) carries a mask bit
    /// in this set.
    MaskOfFirst(MembarMask),
    /// Constraint iff the *second* operation (a membar) carries a mask bit
    /// in this set.
    MaskOfSecond(MembarMask),
}

impl Requirement {
    /// Evaluates the entry for a concrete pair of operations.
    fn holds(self, first: OpClass, second: OpClass) -> bool {
        match self {
            Requirement::Never => false,
            Requirement::Always => true,
            Requirement::MaskOfFirst(m) => first.membar_mask().intersects(m),
            Requirement::MaskOfSecond(m) => second.membar_mask().intersects(m),
        }
    }
}

/// A consistency model's ordering table (§2.2).
///
/// 3×3 over the counter classes (`Load`, `Store`, `Membar`); `Stbar` and
/// atomics are resolved through [`OpClass::kinds`] /
/// [`OpClass::membar_mask`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OrderingTable {
    name: &'static str,
    entries: [[Requirement; 3]; 3],
}

impl OrderingTable {
    /// Builds a table from a name and its 3×3 entries (row-major,
    /// `[Load, Store, Membar]` order).
    pub const fn new(name: &'static str, entries: [[Requirement; 3]; 3]) -> Self {
        OrderingTable { name, entries }
    }

    /// The model name this table belongs to.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The raw entry for a (row, column) pair of counter classes.
    pub fn entry(&self, first: OpKind, second: OpKind) -> Requirement {
        self.entries[first.index()][second.index()]
    }

    /// Whether an ordering constraint exists between a concrete pair of
    /// operation classes: if `X` (class `first`) precedes `Y` (class
    /// `second`) in program order, must `X` perform before `Y`?
    ///
    /// Atomics satisfy the union of their load and store constraints (§4).
    pub fn requires(&self, first: OpClass, second: OpClass) -> bool {
        first.kinds().iter().any(|&kf| {
            second
                .kinds()
                .iter()
                .any(|&ks| self.entry(kf, ks).holds(first, second))
        })
    }

    /// Whether the row class `first` has a constraint against the concrete
    /// second operation — used by the Allowable Reordering checker, which
    /// tracks one `max` counter per *kind* but knows the performing
    /// operation's full class.
    pub fn requires_kind_before(&self, first: OpKind, second: OpClass) -> bool {
        second
            .kinds()
            .iter()
            .any(|&ks| match self.entry(first, ks) {
                Requirement::Never => false,
                Requirement::Always => true,
                // The row is a bare kind; only the second op can supply a mask.
                Requirement::MaskOfFirst(_) => false,
                Requirement::MaskOfSecond(m) => second.membar_mask().intersects(m),
            })
    }
}

impl fmt::Display for OrderingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ordering table:", self.name)?;
        writeln!(f, "{:>8} | {:^18} {:^18} {:^18}", "1st\\2nd", "Load", "Store", "Membar")?;
        for kf in OpKind::ALL {
            write!(f, "{:>8} |", format!("{kf}"))?;
            for ks in OpKind::ALL {
                write!(f, " {:^18}", format!("{:?}", self.entry(kf, ks)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The consistency models the SPARC v9 implementation supports (§4), plus
/// Processor Consistency (Table 1) for completeness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Model {
    /// Sequential consistency.
    Sc,
    /// Total Store Order (Table 2) — a variant of Processor Consistency.
    Tso,
    /// Partial Store Order (Table 3).
    Pso,
    /// Relaxed Memory Order (Table 4) — a variant of Weak Consistency.
    Rmo,
    /// Processor Consistency (Table 1).
    Pc,
}

use Requirement::{Always as A, Never as N};

// Loads before a membar are held by #LoadLoad or #LoadStore; stores by
// #StoreLoad or #StoreStore. Loads after a membar wait on #LoadLoad or
// #StoreLoad; stores on #LoadStore or #StoreStore.
const MEMBAR_COL_LOAD: Requirement =
    Requirement::MaskOfSecond(MembarMask::LL.union(MembarMask::LS));
const MEMBAR_COL_STORE: Requirement =
    Requirement::MaskOfSecond(MembarMask::SL.union(MembarMask::SS));
const MEMBAR_ROW_LOAD: Requirement =
    Requirement::MaskOfFirst(MembarMask::LL.union(MembarMask::SL));
const MEMBAR_ROW_STORE: Requirement =
    Requirement::MaskOfFirst(MembarMask::LS.union(MembarMask::SS));

/// Membar rows/columns are mask-resolved in every model; membar-membar
/// pairs are always ordered (barriers are processed in program order).
const fn with_membar(name: &'static str, two_by_two: [[Requirement; 2]; 2]) -> OrderingTable {
    OrderingTable::new(
        name,
        [
            [two_by_two[0][0], two_by_two[0][1], MEMBAR_COL_LOAD],
            [two_by_two[1][0], two_by_two[1][1], MEMBAR_COL_STORE],
            [MEMBAR_ROW_LOAD, MEMBAR_ROW_STORE, A],
        ],
    )
}

static SC_TABLE: OrderingTable =
    OrderingTable::new("SC", [[A, A, A], [A, A, A], [A, A, A]]);
static TSO_TABLE: OrderingTable = with_membar("TSO", [[A, A], [N, A]]);
static PSO_TABLE: OrderingTable = with_membar("PSO", [[A, A], [N, N]]);
static RMO_TABLE: OrderingTable = with_membar("RMO", [[N, N], [N, N]]);
static PC_TABLE: OrderingTable = with_membar("PC", [[A, A], [N, A]]);

impl Model {
    /// All supported models.
    pub const ALL: [Model; 5] = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo, Model::Pc];

    /// The models evaluated in the paper's experiments.
    pub const EVALUATED: [Model; 4] = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];

    /// This model's ordering table.
    pub fn table(self) -> &'static OrderingTable {
        match self {
            Model::Sc => &SC_TABLE,
            Model::Tso => &TSO_TABLE,
            Model::Pso => &PSO_TABLE,
            Model::Rmo => &RMO_TABLE,
            Model::Pc => &PC_TABLE,
        }
    }

    /// Whether the model requires loads to appear to perform in program
    /// order. Models with load ordering use load-order speculation and
    /// consider loads to perform at verification; RMO considers loads to
    /// perform at execution (§4.1).
    pub fn loads_ordered(self) -> bool {
        self.table().requires(OpClass::Load, OpClass::Load)
    }

    /// Whether a store may be buffered past subsequent loads (i.e., the
    /// Store→Load entry is relaxed), enabling a write buffer.
    pub fn store_load_relaxed(self) -> bool {
        !self.table().requires(OpClass::Store, OpClass::Load)
    }

    /// Whether stores may drain out of program order (Store→Store relaxed).
    pub fn store_store_relaxed(self) -> bool {
        !self.table().requires(OpClass::Store, OpClass::Store)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        self.table().name()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ordering requirement between operations possibly decoded under
/// *different* models (SPARC v9 switches models at runtime; 32-bit code
/// regions run TSO, §5). We enforce the union of both models' tables,
/// which is conservative and therefore sound.
pub fn requires_between(
    first_model: Model,
    first: OpClass,
    second_model: Model,
    second: OpClass,
) -> bool {
    first_model.table().requires(first, second) || second_model.table().requires(first, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membar::MembarMask as M;

    #[test]
    fn table_1_and_2_processor_consistency_and_tso() {
        for model in [Model::Pc, Model::Tso] {
            let t = model.table();
            assert!(t.requires(OpClass::Load, OpClass::Load));
            assert!(t.requires(OpClass::Load, OpClass::Store));
            assert!(!t.requires(OpClass::Store, OpClass::Load));
            assert!(t.requires(OpClass::Store, OpClass::Store));
        }
    }

    #[test]
    fn sc_orders_everything() {
        let t = Model::Sc.table();
        for a in [OpClass::Load, OpClass::Store, OpClass::Atomic] {
            for b in [OpClass::Load, OpClass::Store, OpClass::Atomic] {
                assert!(t.requires(a, b), "{a} -> {b} must be ordered under SC");
            }
        }
    }

    #[test]
    fn table_3_pso() {
        let t = Model::Pso.table();
        assert!(t.requires(OpClass::Load, OpClass::Load));
        assert!(t.requires(OpClass::Load, OpClass::Store));
        assert!(!t.requires(OpClass::Store, OpClass::Load));
        assert!(!t.requires(OpClass::Store, OpClass::Store));
        // Stbar row/column (Table 3): Load-Stbar false, Store-Stbar true,
        // Stbar-Load false, Stbar-Store true.
        assert!(!t.requires(OpClass::Load, OpClass::Stbar));
        assert!(t.requires(OpClass::Store, OpClass::Stbar));
        assert!(!t.requires(OpClass::Stbar, OpClass::Load));
        assert!(t.requires(OpClass::Stbar, OpClass::Store));
    }

    #[test]
    fn table_4_rmo_membar_masks() {
        let t = Model::Rmo.table();
        // No implicit ordering between plain accesses.
        assert!(!t.requires(OpClass::Load, OpClass::Load));
        assert!(!t.requires(OpClass::Store, OpClass::Store));
        assert!(!t.requires(OpClass::Load, OpClass::Store));
        assert!(!t.requires(OpClass::Store, OpClass::Load));
        // Membar column: loads are held by #LL or #LS membars.
        assert!(t.requires(OpClass::Load, OpClass::Membar(M::LL)));
        assert!(t.requires(OpClass::Load, OpClass::Membar(M::LS)));
        assert!(!t.requires(OpClass::Load, OpClass::Membar(M::SL)));
        assert!(!t.requires(OpClass::Load, OpClass::Membar(M::SS)));
        // Stores are held by #SL or #SS membars.
        assert!(t.requires(OpClass::Store, OpClass::Membar(M::SL)));
        assert!(t.requires(OpClass::Store, OpClass::Membar(M::SS)));
        assert!(!t.requires(OpClass::Store, OpClass::Membar(M::LL)));
        // Membar row: later loads wait on #LL or #SL, later stores on #LS or #SS.
        assert!(t.requires(OpClass::Membar(M::LL), OpClass::Load));
        assert!(t.requires(OpClass::Membar(M::SL), OpClass::Load));
        assert!(!t.requires(OpClass::Membar(M::SS), OpClass::Load));
        assert!(t.requires(OpClass::Membar(M::SS), OpClass::Store));
        assert!(t.requires(OpClass::Membar(M::LS), OpClass::Store));
        assert!(!t.requires(OpClass::Membar(M::LL), OpClass::Store));
        // Membars are mutually ordered.
        assert!(t.requires(OpClass::Membar(M::LL), OpClass::Membar(M::SS)));
    }

    #[test]
    fn atomics_take_union_of_load_and_store_rows() {
        let t = Model::Tso.table();
        // Atomic before load: load half gives Load->Load = true.
        assert!(t.requires(OpClass::Atomic, OpClass::Load));
        // Store before atomic: Store->Load is false but Store->Store is
        // true, so the constraint holds through the store half.
        assert!(t.requires(OpClass::Store, OpClass::Atomic));
        // Under RMO an atomic has no implicit ordering with plain accesses.
        assert!(!Model::Rmo.table().requires(OpClass::Atomic, OpClass::Load));
    }

    #[test]
    fn empty_membar_orders_nothing_in_rmo() {
        let t = Model::Rmo.table();
        let nop = OpClass::Membar(M::NONE);
        assert!(!t.requires(OpClass::Load, nop));
        assert!(!t.requires(nop, OpClass::Store));
    }

    #[test]
    fn stbar_under_pso_equals_membar_ss() {
        let t = Model::Pso.table();
        for other in [OpClass::Load, OpClass::Store] {
            assert_eq!(
                t.requires(OpClass::Stbar, other),
                t.requires(OpClass::Membar(M::SS), other)
            );
            assert_eq!(
                t.requires(other, OpClass::Stbar),
                t.requires(other, OpClass::Membar(M::SS))
            );
        }
    }

    #[test]
    fn requires_kind_before_matches_requires_for_plain_ops() {
        for model in Model::ALL {
            let t = model.table();
            for (kind, class) in [(OpKind::Load, OpClass::Load), (OpKind::Store, OpClass::Store)] {
                for second in [
                    OpClass::Load,
                    OpClass::Store,
                    OpClass::Atomic,
                    OpClass::Stbar,
                    OpClass::Membar(M::ALL),
                    OpClass::Membar(M::SL),
                ] {
                    assert_eq!(
                        t.requires_kind_before(kind, second),
                        t.requires(class, second),
                        "{model}: {kind} vs {second}"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_model_union_is_conservative() {
        // A store decoded under TSO followed by a store decoded under RMO:
        // TSO's table requires Store->Store, so the union requires it.
        assert!(requires_between(
            Model::Tso,
            OpClass::Store,
            Model::Rmo,
            OpClass::Store
        ));
        assert!(!requires_between(
            Model::Rmo,
            OpClass::Store,
            Model::Rmo,
            OpClass::Store
        ));
    }

    #[test]
    fn model_capability_probes() {
        assert!(Model::Sc.loads_ordered());
        assert!(!Model::Sc.store_load_relaxed());
        assert!(Model::Tso.loads_ordered());
        assert!(Model::Tso.store_load_relaxed());
        assert!(!Model::Tso.store_store_relaxed());
        assert!(Model::Pso.store_store_relaxed());
        assert!(!Model::Rmo.loads_ordered());
        assert_eq!(Model::Rmo.name(), "RMO");
    }

    #[test]
    fn display_renders_all_tables() {
        for model in Model::ALL {
            let rendered = format!("{}", model.table());
            assert!(rendered.contains(model.name()));
            assert!(rendered.contains("1st\\2nd"));
        }
    }
}
