//! Offline polynomial-time consistency verification (Roy et al.,
//! "Fast and Generalized Polynomial Time Memory Consistency Verification";
//! the TSOtool algorithm family).
//!
//! The online DVMC checkers are themselves unverified trusted code. This
//! module is their independent cross-check: given the per-core commit
//! logs of a finished run ([`CommitRecord`]s, as recorded by the pipeline
//! under `record_commits`) and the model's [`OrderingTable`], it decides
//! — with no knowledge of the machine, the checkers, or the coherence
//! protocol — whether the observed execution is consistent with the
//! model. Any run where this offline verdict and the online checkers
//! disagree is automatically a bug in one of them (the `exp_fuzz`
//! disagreement protocol, DESIGN.md §12).
//!
//! ## Algorithm
//!
//! A constraint graph over all committed operations; an edge `a → b`
//! asserts "`a` performs before `b` in the global memory order". The
//! execution is consistent iff the constraints are acyclic.
//!
//! 1. **Program order**: for every same-thread pair `i < j`, an edge when
//!    `table.requires(class_i, class_j)` holds. Membars are graph nodes,
//!    so fence cumulativity (`St → Membar#SS → St` under RMO) falls out
//!    of transitivity.
//! 2. **Per-location program order** (coherence, model-independent): a
//!    same-thread same-address pair is ordered when the first operation
//!    reads (`R→R`, `R→W`: CoRR/CoRW1) or both write (`W→W`: CoWW).
//!    `W→R` is deliberately *not* an edge — store-buffer forwarding lets
//!    a load bind its own thread's store before that store performs
//!    globally, and asserting the edge manufactures false cycles on
//!    perfectly legal TSO executions.
//! 3. **Reads-from**: every load value is attributed to the unique store
//!    that wrote it (the harness writes globally unique non-zero values;
//!    zero is the initial value). A cross-thread reads-from adds `W → R`
//!    (stores here are multi-copy atomic: the machine invalidates before
//!    granting write permission). A same-thread reads-from adds no edge
//!    (forwarding), but must name the *latest* program-order-earlier
//!    same-address store — anything else is a uniprocessor-ordering
//!    violation reported directly. A load of the initial value adds
//!    from-read edges `R → W'` to every store on that address.
//! 4. **Inferred edges**, iterated to a fixpoint (the Roy et al. closure
//!    rules): for a load `R` reading store `W`, and any other store `W'`
//!    to the same address — if `W' ⤳ R` then `W' → W`, and if `W ⤳ W'`
//!    then `R → W'`. A read past its own thread's store `P` (external
//!    `W ≠ P`) also proves `P → W`.
//!
//! A cycle at any point is an inconsistency and the verdict carries it as
//! a certificate. The fixpoint adds at most `O(n²)` edges and each round
//! costs `O(n·E)` reachability, so the whole check is polynomial (the
//! paper's specialized data structures achieve tighter bounds; this
//! implementation favours being obviously correct — it is the *oracle*).
//!
//! Like TSOtool, the verifier is **sound but incomplete**: `Forbidden`
//! verdicts are always real (every edge is justified by an axiom), while
//! a sufficiently contrived execution could in principle evade the
//! inference rules and pass as `Allowed`. For the cyclic programs the
//! fuzzer emits, the rules above are exhaustive in practice.

use crate::op::OpClass;
use crate::table::OrderingTable;
use dvmc_types::{SeqNum, WordAddr};
use std::collections::HashMap;

/// One committed operation, as recorded by the pipeline at commit when
/// `record_commits` is on. The offline oracle's entire view of a run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CommitRecord {
    /// The operation's per-core sequence number (decode order).
    pub seq: SeqNum,
    /// Load, Store, Atomic, Membar, or Stbar.
    pub class: OpClass,
    /// The word accessed (0 for barriers).
    pub addr: WordAddr,
    /// The committed value: what a load/atomic read, what a store wrote
    /// (0 for barriers).
    pub value: u64,
    /// The value written, for stores and atomics (an atomic's `value` is
    /// its *read* half); 0 otherwise.
    pub store_value: u64,
}

impl CommitRecord {
    /// A committed load that read `value`.
    pub fn load(seq: u64, addr: u64, value: u64) -> CommitRecord {
        CommitRecord {
            seq: SeqNum(seq),
            class: OpClass::Load,
            addr: WordAddr(addr),
            value,
            store_value: 0,
        }
    }

    /// A committed store of `value`.
    pub fn store(seq: u64, addr: u64, value: u64) -> CommitRecord {
        CommitRecord {
            seq: SeqNum(seq),
            class: OpClass::Store,
            addr: WordAddr(addr),
            value,
            store_value: value,
        }
    }

    /// A committed atomic that read `read` and wrote `written`.
    pub fn atomic(seq: u64, addr: u64, read: u64, written: u64) -> CommitRecord {
        CommitRecord {
            seq: SeqNum(seq),
            class: OpClass::Atomic,
            addr: WordAddr(addr),
            value: read,
            store_value: written,
        }
    }

    /// A committed barrier.
    pub fn barrier(seq: u64, class: OpClass) -> CommitRecord {
        CommitRecord {
            seq: SeqNum(seq),
            class,
            addr: WordAddr(0),
            value: 0,
            store_value: 0,
        }
    }

    /// The value this operation wrote, if it writes.
    fn written(&self) -> Option<u64> {
        self.class.writes().then_some(self.store_value)
    }
}

/// The oracle's verdict on one execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The observed execution is consistent with the ordering table.
    Allowed,
    /// The observed execution contradicts the table (or the value-
    /// uniqueness contract the oracle needs); the payload says how.
    Forbidden(Inconsistency),
}

impl Verdict {
    /// Whether the execution passed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, Verdict::Allowed)
    }
}

/// Why an execution was rejected. Operations are named `(thread, index)`
/// — the position in that thread's commit log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inconsistency {
    /// A load returned a non-initial value no store wrote.
    UnattributableRead {
        /// Reading thread.
        thread: usize,
        /// Index in that thread's log.
        index: usize,
        /// Address read.
        addr: WordAddr,
        /// The orphaned value.
        value: u64,
    },
    /// Two stores to one address wrote the same value, so reads of it
    /// cannot be attributed. This breaks the harness contract (the fuzzer
    /// writes globally unique values), not the memory model — but the
    /// oracle refuses to guess rather than risk an unsound `Allowed`.
    AmbiguousValue {
        /// The address with duplicate values.
        addr: WordAddr,
        /// The duplicated value.
        value: u64,
    },
    /// A load observed a store that follows it in its own program order.
    FutureRead {
        /// Reading thread.
        thread: usize,
        /// Index in that thread's log.
        index: usize,
        /// Address read.
        addr: WordAddr,
        /// The value of the program-order-later store.
        value: u64,
    },
    /// A load ignored its own thread's program-order-earlier store to the
    /// same address (read the initial value, or skipped over a newer own
    /// store) — a uniprocessor-ordering violation under every model.
    LostOwnStore {
        /// Reading thread.
        thread: usize,
        /// Index in that thread's log.
        index: usize,
        /// Address read.
        addr: WordAddr,
        /// The stale value observed.
        value: u64,
    },
    /// The constraint graph is cyclic; the certificate lists one cycle's
    /// operations in order (last links back to first).
    Cycle {
        /// The cycle, as `(thread, index)` pairs.
        ops: Vec<(usize, usize)>,
    },
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inconsistency::UnattributableRead {
                thread,
                index,
                addr,
                value,
            } => write!(
                f,
                "t{thread}[{index}] read {value} from {addr:?}, which no store wrote"
            ),
            Inconsistency::AmbiguousValue { addr, value } => write!(
                f,
                "two stores wrote {value} to {addr:?}: reads are unattributable"
            ),
            Inconsistency::FutureRead {
                thread,
                index,
                addr,
                value,
            } => write!(
                f,
                "t{thread}[{index}] read {value} from {addr:?} before its own store wrote it"
            ),
            Inconsistency::LostOwnStore {
                thread,
                index,
                addr,
                value,
            } => write!(
                f,
                "t{thread}[{index}] read stale {value} from {addr:?} past its own earlier store"
            ),
            Inconsistency::Cycle { ops } => {
                write!(f, "ordering cycle:")?;
                for (t, i) in ops {
                    write!(f, " t{t}[{i}] ->")?;
                }
                write!(f, " t{}[{}]", ops[0].0, ops[0].1)
            }
        }
    }
}

/// Internal node bookkeeping: one graph node per committed operation.
struct Node {
    thread: usize,
    index: usize,
    rec: CommitRecord,
}

/// Dense boolean adjacency + reachability over the op graph.
struct Graph {
    n: usize,
    /// `edges[a]` holds the direct successors of `a` (bitset rows).
    edges: Vec<Vec<u64>>,
}

impl Graph {
    fn new(n: usize) -> Graph {
        let words = n.div_ceil(64);
        Graph {
            n,
            edges: vec![vec![0u64; words]; n],
        }
    }

    fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges[a][b / 64] >> (b % 64) & 1 == 1
    }

    /// Adds `a → b`; returns whether the edge is new.
    fn add_edge(&mut self, a: usize, b: usize) -> bool {
        let had = self.has_edge(a, b);
        self.edges[a][b / 64] |= 1 << (b % 64);
        !had
    }

    /// Transitive reachability, recomputed from scratch: `reach[a]`
    /// contains every node on a directed path from `a` (not `a` itself
    /// unless it lies on a cycle).
    fn reachability(&self) -> Vec<Vec<u64>> {
        let words = self.n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; self.n];
        // Reverse post-order would be faster; a fixpoint over rows is
        // simple and still polynomial.
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..self.n {
                // reach[a] = succ(a) ∪ (⋃_{b ∈ succ(a)} reach[b])
                let mut row = self.edges[a].clone();
                for (b, rb) in reach.iter().enumerate() {
                    if b != a && self.has_edge(a, b) {
                        for (w, v) in row.iter_mut().zip(rb) {
                            *w |= v;
                        }
                    }
                }
                if row != reach[a] {
                    reach[a] = row;
                    changed = true;
                }
            }
        }
        reach
    }

    /// A shortest path `from ⤳ to` over direct edges (BFS); `None` if
    /// unreachable. Used only to extract cycle certificates.
    fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut prev = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = vec![false; self.n];
        seen[from] = true;
        while let Some(a) = queue.pop_front() {
            for b in 0..self.n {
                if self.has_edge(a, b) && !seen[b] {
                    seen[b] = true;
                    prev[b] = a;
                    if b == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                            if cur == from {
                                break;
                            }
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(b);
                }
            }
        }
        None
    }
}

fn bit(row: &[u64], i: usize) -> bool {
    row[i / 64] >> (i % 64) & 1 == 1
}

/// Verifies one run's commit logs against an ordering table.
///
/// `logs[t]` is thread `t`'s committed operations in commit (= program)
/// order. Returns [`Verdict::Allowed`] iff the observed values admit a
/// global memory order consistent with the table, per-location coherence,
/// and multi-copy-atomic stores. See the module docs for the axioms; the
/// harness must write globally unique non-zero store values per address
/// (violations surface as [`Inconsistency::AmbiguousValue`]).
pub fn verify(table: &OrderingTable, logs: &[Vec<CommitRecord>]) -> Verdict {
    // ----- nodes ---------------------------------------------------------
    let mut nodes: Vec<Node> = Vec::new();
    for (thread, log) in logs.iter().enumerate() {
        for (index, &rec) in log.iter().enumerate() {
            nodes.push(Node { thread, index, rec });
        }
    }
    let n = nodes.len();
    let mut graph = Graph::new(n);
    let certify = |ops: &[usize]| -> Inconsistency {
        Inconsistency::Cycle {
            ops: ops.iter().map(|&i| (nodes[i].thread, nodes[i].index)).collect(),
        }
    };

    // ----- value attribution index ---------------------------------------
    // (addr, value) -> writer node; duplicates poison the entry.
    let mut writer_of: HashMap<(WordAddr, u64), Option<usize>> = HashMap::new();
    // addr -> all writer nodes, in node order.
    let mut writers_to: HashMap<WordAddr, Vec<usize>> = HashMap::new();
    for (id, node) in nodes.iter().enumerate() {
        if let Some(v) = node.rec.written() {
            writers_to.entry(node.rec.addr).or_default().push(id);
            writer_of
                .entry((node.rec.addr, v))
                .and_modify(|e| *e = None)
                .or_insert(Some(id));
        }
    }

    // ----- static edges: program order and per-location order ------------
    let mut thread_ops: Vec<Vec<usize>> = vec![Vec::new(); logs.len()];
    for (id, node) in nodes.iter().enumerate() {
        thread_ops[node.thread].push(id);
    }
    for ops in &thread_ops {
        for (i, &a) in ops.iter().enumerate() {
            for &b in &ops[i + 1..] {
                let (ra, rb) = (nodes[a].rec, nodes[b].rec);
                if table.requires(ra.class, rb.class) {
                    graph.add_edge(a, b);
                }
                // Per-location coherence order; W→R excluded (forwarding).
                let both_mem = !ra.class.is_barrier() && !rb.class.is_barrier();
                if both_mem
                    && ra.addr == rb.addr
                    && (ra.class == OpClass::Load || (ra.class.writes() && rb.class == OpClass::Store))
                {
                    graph.add_edge(a, b);
                }
            }
        }
    }

    // ----- reads-from attribution -----------------------------------------
    // rf[r] = the store node r reads from (internal or external).
    let mut rf: Vec<Option<usize>> = vec![None; n];
    for (id, node) in nodes.iter().enumerate() {
        if !node.rec.class.reads() {
            continue;
        }
        let (addr, value) = (node.rec.addr, node.rec.value);
        // The latest program-order-earlier same-address write by the same
        // thread, if any (what store-buffer forwarding would return).
        let own_prior = thread_ops[node.thread]
            .iter()
            .take_while(|&&o| o != id)
            .filter(|&&o| nodes[o].rec.addr == addr && nodes[o].rec.written().is_some())
            .last()
            .copied();
        if value == 0 {
            if writer_of.contains_key(&(addr, 0)) {
                return Verdict::Forbidden(Inconsistency::AmbiguousValue { addr, value: 0 });
            }
            if own_prior.is_some() {
                return Verdict::Forbidden(Inconsistency::LostOwnStore {
                    thread: node.thread,
                    index: node.index,
                    addr,
                    value,
                });
            }
            // Reads the initial value: from-read edges to every store
            // (except an atomic's own write half).
            for &w in writers_to.get(&addr).into_iter().flatten() {
                if w != id {
                    graph.add_edge(id, w);
                }
            }
            continue;
        }
        let Some(&slot) = writer_of.get(&(addr, value)) else {
            return Verdict::Forbidden(Inconsistency::UnattributableRead {
                thread: node.thread,
                index: node.index,
                addr,
                value,
            });
        };
        let Some(w) = slot else {
            return Verdict::Forbidden(Inconsistency::AmbiguousValue { addr, value });
        };
        rf[id] = Some(w);
        if nodes[w].thread == node.thread {
            if w > id || (w == id && node.rec.class == OpClass::Load) {
                return Verdict::Forbidden(Inconsistency::FutureRead {
                    thread: node.thread,
                    index: node.index,
                    addr,
                    value,
                });
            }
            if own_prior != Some(w) && w != id {
                // Read its own store, but not the latest one.
                return Verdict::Forbidden(Inconsistency::LostOwnStore {
                    thread: node.thread,
                    index: node.index,
                    addr,
                    value,
                });
            }
            // Internal reads-from: no global-order edge (forwarding).
        } else {
            // External reads-from: the store performed (invalidated every
            // copy) before the load bound its value — MCA machine.
            graph.add_edge(w, id);
            if let Some(p) = own_prior {
                // The load saw w despite its own earlier store p, so w is
                // coherence-after p.
                graph.add_edge(p, w);
            }
        }
    }

    // ----- fixpoint: inferred edges + cycle detection ---------------------
    loop {
        let reach = graph.reachability();
        if let Some(a) = (0..n).find(|&a| bit(&reach[a], a)) {
            // A cycle through `a`: walk direct edges back to `a`.
            let succ = (0..n).find(|&b| graph.has_edge(a, b) && (bit(&reach[b], a) || b == a));
            let cycle = match succ {
                Some(b) if b != a => {
                    let mut p = graph.path(b, a).unwrap_or_else(|| vec![a]);
                    p.insert(0, a);
                    p.pop(); // `a` closes the cycle implicitly
                    // path() returned [b, ..., a]; after insert/pop: [a, b, ...]
                    p
                }
                _ => vec![a],
            };
            return Verdict::Forbidden(certify(&cycle));
        }
        let mut fresh: Vec<(usize, usize)> = Vec::new();
        for r in 0..n {
            let Some(w) = rf[r] else { continue };
            let addr = nodes[r].rec.addr;
            for &w2 in writers_to.get(&addr).into_iter().flatten() {
                if w2 == w || w2 == r {
                    continue;
                }
                // W' ⤳ R ⟹ W' → W : R read W although W' had already
                // performed, so W is coherence-after W'.
                if bit(&reach[w2], r) && !graph.has_edge(w2, w) {
                    fresh.push((w2, w));
                }
                // W ⤳ W' ⟹ R → W' : W' is coherence-after the store R
                // read, so R must have bound before W' performed.
                if bit(&reach[w], w2) && !graph.has_edge(r, w2) {
                    fresh.push((r, w2));
                }
            }
        }
        let mut grew = false;
        for (a, b) in fresh {
            grew |= graph.add_edge(a, b);
        }
        if !grew {
            return Verdict::Allowed;
        }
    }
}

/// Convenience: verify under a model's own table.
pub fn verify_model(model: crate::table::Model, logs: &[Vec<CommitRecord>]) -> Verdict {
    verify(model.table(), logs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membar::MembarMask;
    use crate::table::Model;

    const X: u64 = 0x1000;
    const Y: u64 = 0x2000;

    fn forbidden(v: &Verdict) -> bool {
        !v.is_allowed()
    }

    /// Roy et al.'s running example shape: the SB (Dekker) hand execution.
    /// Both threads store then load, both loads return the initial value.
    fn sb_logs(r0: u64, r1: u64) -> Vec<Vec<CommitRecord>> {
        vec![
            vec![CommitRecord::store(0, X, 1), CommitRecord::load(1, Y, r0)],
            vec![CommitRecord::store(0, Y, 2), CommitRecord::load(1, X, r1)],
        ]
    }

    #[test]
    fn sb_relaxed_outcome_forbidden_under_sc_allowed_under_tso() {
        let logs = sb_logs(0, 0);
        assert!(forbidden(&verify_model(Model::Sc, &logs)), "SC forbids (0,0)");
        assert_eq!(verify_model(Model::Tso, &logs), Verdict::Allowed);
        // Non-relaxed outcomes are SC-consistent.
        assert_eq!(verify_model(Model::Sc, &sb_logs(2, 1)), Verdict::Allowed);
        assert_eq!(verify_model(Model::Sc, &sb_logs(0, 1)), Verdict::Allowed);
    }

    #[test]
    fn sb_with_fences_forbidden_under_rmo() {
        // Store; Membar #ALL; Load on both threads — the fence restores
        // the Store→Load edge even under RMO, via the membar node.
        let t = |sv: u64, la: u64, lv: u64, sa: u64| {
            vec![
                CommitRecord::store(0, sa, sv),
                CommitRecord::barrier(1, OpClass::Membar(MembarMask::ALL)),
                CommitRecord::load(2, la, lv),
            ]
        };
        let logs = vec![t(1, Y, 0, X), t(2, X, 0, Y)];
        assert!(forbidden(&verify_model(Model::Rmo, &logs)));
    }

    #[test]
    fn mp_stale_read_verdicts_follow_the_tables() {
        // t0: x=1; y=1   t1: r(y)=1; r(x)=0  — requires W→W or R→R
        // relaxation.
        let logs = vec![
            vec![CommitRecord::store(0, X, 1), CommitRecord::store(1, Y, 1)],
            vec![CommitRecord::load(0, Y, 1), CommitRecord::load(1, X, 0)],
        ];
        assert!(forbidden(&verify_model(Model::Sc, &logs)));
        assert!(forbidden(&verify_model(Model::Tso, &logs)));
        assert_eq!(verify_model(Model::Pso, &logs), Verdict::Allowed);
        assert_eq!(verify_model(Model::Rmo, &logs), Verdict::Allowed);
        // An Stbar between the stores restores the verdict under PSO.
        let fenced = vec![
            vec![
                CommitRecord::store(0, X, 1),
                CommitRecord::barrier(1, OpClass::Stbar),
                CommitRecord::store(2, Y, 1),
            ],
            vec![CommitRecord::load(0, Y, 1), CommitRecord::load(1, X, 0)],
        ];
        assert!(forbidden(&verify_model(Model::Pso, &fenced)));
    }

    #[test]
    fn lb_cycle_found_in_the_initial_graph() {
        // t0: r(y)=1; x=1   t1: r(x)=1; y=1 — the rf/po cycle needs no
        // inference rules at all.
        let logs = vec![
            vec![CommitRecord::load(0, Y, 1), CommitRecord::store(1, X, 1)],
            vec![CommitRecord::load(0, X, 1), CommitRecord::store(1, Y, 1)],
        ];
        let v = verify_model(Model::Sc, &logs);
        let Verdict::Forbidden(Inconsistency::Cycle { ops }) = &v else {
            panic!("expected a cycle certificate, got {v:?}");
        };
        assert!(ops.len() >= 2, "certificate names the cycle: {ops:?}");
        assert_eq!(verify_model(Model::Rmo, &logs), Verdict::Allowed);
    }

    #[test]
    fn coherence_violations_are_model_independent() {
        // CoRR backwards: reader sees 2 then 1 while the writer ordered
        // 1 before 2.
        let corr = vec![
            vec![CommitRecord::store(0, X, 1), CommitRecord::store(1, X, 2)],
            vec![CommitRecord::load(0, X, 2), CommitRecord::load(1, X, 1)],
        ];
        for m in Model::ALL {
            assert!(forbidden(&verify_model(m, &corr)), "{m}: CoRR must fail");
        }
        // The monotone order is fine everywhere.
        let ok = vec![
            vec![CommitRecord::store(0, X, 1), CommitRecord::store(1, X, 2)],
            vec![CommitRecord::load(0, X, 1), CommitRecord::load(1, X, 2)],
        ];
        for m in Model::ALL {
            assert_eq!(verify_model(m, &ok), Verdict::Allowed, "{m}");
        }
    }

    #[test]
    fn uniprocessor_axioms() {
        // CoRW1: a load observing its own later store.
        let future = vec![vec![CommitRecord::load(0, X, 7), CommitRecord::store(1, X, 7)]];
        assert!(matches!(
            verify_model(Model::Rmo, &future),
            Verdict::Forbidden(Inconsistency::FutureRead { .. })
        ));
        // Reading the initial value past one's own store.
        let lost = vec![vec![CommitRecord::store(0, X, 7), CommitRecord::load(1, X, 0)]];
        assert!(matches!(
            verify_model(Model::Rmo, &lost),
            Verdict::Forbidden(Inconsistency::LostOwnStore { .. })
        ));
        // Forwarding one's own store is fine even before it performs.
        let fwd = vec![vec![CommitRecord::store(0, X, 7), CommitRecord::load(1, X, 7)]];
        assert_eq!(verify_model(Model::Sc, &fwd), Verdict::Allowed);
        // Reading an older own store past a newer own store is not.
        let skipped = vec![vec![
            CommitRecord::store(0, X, 7),
            CommitRecord::store(1, X, 8),
            CommitRecord::load(2, X, 7),
        ]];
        assert!(matches!(
            verify_model(Model::Sc, &skipped),
            Verdict::Forbidden(Inconsistency::LostOwnStore { .. })
        ));
    }

    #[test]
    fn value_attribution_failures() {
        let orphan = vec![vec![CommitRecord::load(0, X, 99)]];
        assert!(matches!(
            verify_model(Model::Sc, &orphan),
            Verdict::Forbidden(Inconsistency::UnattributableRead { .. })
        ));
        let dup = vec![
            vec![CommitRecord::store(0, X, 5)],
            vec![CommitRecord::store(0, X, 5)],
            vec![CommitRecord::load(0, X, 5)],
        ];
        assert!(matches!(
            verify_model(Model::Sc, &dup),
            Verdict::Forbidden(Inconsistency::AmbiguousValue { .. })
        ));
        // A store of 0 makes "read 0" ambiguous with the initial value.
        let zero = vec![vec![CommitRecord::store(0, X, 0)], vec![CommitRecord::load(0, X, 0)]];
        assert!(matches!(
            verify_model(Model::Sc, &zero),
            Verdict::Forbidden(Inconsistency::AmbiguousValue { .. })
        ));
    }

    #[test]
    fn store_forwarding_does_not_fabricate_sb_cycles() {
        // SB where each thread also reads its own store first (forwarded):
        // t0: x=1; r(x)=1; r(y)=0   t1: y=1; r(y)=1; r(x)=0.
        // Legal under TSO; a naive W→R po-loc edge would call it a cycle.
        let logs = vec![
            vec![
                CommitRecord::store(0, X, 1),
                CommitRecord::load(1, X, 1),
                CommitRecord::load(2, Y, 0),
            ],
            vec![
                CommitRecord::store(0, Y, 1),
                CommitRecord::load(1, Y, 1),
                CommitRecord::load(2, X, 0),
            ],
        ];
        assert_eq!(verify_model(Model::Tso, &logs), Verdict::Allowed);
        assert!(forbidden(&verify_model(Model::Sc, &logs)), "still SB under SC");
    }

    #[test]
    fn inference_rules_reach_the_fixpoint_cases() {
        // WRC with MCA stores under SC-but-relaxed-tables: t0 writes x,
        // t1 sees it then writes y, t2 sees y but stale x. The verdict
        // needs the W'⤳R ⟹ W'→W inference through the rf chain.
        let logs = vec![
            vec![CommitRecord::store(0, X, 1)],
            vec![CommitRecord::load(0, X, 1), CommitRecord::store(1, Y, 1)],
            vec![CommitRecord::load(0, Y, 1), CommitRecord::load(1, X, 0)],
        ];
        assert!(forbidden(&verify_model(Model::Sc, &logs)));
        assert!(forbidden(&verify_model(Model::Tso, &logs)));
        assert_eq!(verify_model(Model::Rmo, &logs), Verdict::Allowed);
    }

    /// The PR 1 directory bug, replayed offline: the upgrade path left
    /// the upgrading owner in the sharers list, so a later invalidation
    /// could destroy its dirty line and readers saw the value history run
    /// backwards. The oracle must rediscover this from the commit log
    /// alone — the captured shape is a reader observing `x` go
    /// 1 → 2 → 1 while the writers ordered 1 before 2.
    #[test]
    fn rediscovers_the_pr1_directory_upgrade_bug() {
        let logs = vec![
            vec![CommitRecord::store(0, X, 1)],
            vec![
                CommitRecord::load(0, X, 1),
                CommitRecord::store(1, X, 2),
                CommitRecord::load(2, X, 2),
                CommitRecord::load(3, X, 1), // the lost-upgrade symptom
            ],
        ];
        for m in Model::ALL {
            let v = verify_model(m, &logs);
            assert!(
                forbidden(&v),
                "{m}: the upgrade-bug log must be rejected, got {v:?}"
            );
        }
    }

    #[test]
    fn empty_and_trivial_logs_are_allowed() {
        assert_eq!(verify_model(Model::Sc, &[]), Verdict::Allowed);
        let quiet = vec![vec![], vec![CommitRecord::load(0, X, 0)]];
        assert_eq!(verify_model(Model::Sc, &quiet), Verdict::Allowed);
    }

    #[test]
    fn atomics_participate_as_both_read_and_write() {
        // t0 swaps 1 into x reading 0; t1 swaps 2 into x reading 1: a
        // consistent lock-like chain.
        let logs = vec![
            vec![CommitRecord::atomic(0, X, 0, 1)],
            vec![CommitRecord::atomic(0, X, 1, 2)],
        ];
        assert_eq!(verify_model(Model::Tso, &logs), Verdict::Allowed);
        // Both swaps claiming to read 0 is impossible: whichever performed
        // second must see the first (atomicity via value attribution —
        // one of the reads becomes a from-read cycle).
        let raced = vec![
            vec![CommitRecord::atomic(0, X, 0, 1)],
            vec![CommitRecord::atomic(0, X, 0, 2)],
        ];
        assert!(forbidden(&verify_model(Model::Tso, &raced)));
    }

    #[test]
    fn inconsistency_display_is_readable() {
        let c = Inconsistency::Cycle {
            ops: vec![(0, 1), (1, 0)],
        };
        let s = format!("{c}");
        assert!(s.contains("t0[1]") && s.contains("t1[0]"), "{s}");
        let u = Inconsistency::UnattributableRead {
            thread: 2,
            index: 3,
            addr: WordAddr(X),
            value: 9,
        };
        assert!(format!("{u}").contains("t2[3]"));
    }
}
