//! Operation classes and the checker's counter classes.

use crate::membar::MembarMask;
use std::fmt;

/// The three operation-type classes tracked by the Allowable Reordering
/// checker's `max{OP}` counter registers (§4.2).
///
/// Atomic read-modify-write operations "must satisfy ordering requirements
/// for both store and load" (§4), so they participate in both the `Load`
/// and `Store` classes; they are not a class of their own.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Loads (and the load half of atomics).
    Load,
    /// Stores (and the store half of atomics).
    Store,
    /// Memory barriers (`Membar`, `Stbar`).
    Membar,
}

impl OpKind {
    /// All counter classes, for iteration.
    pub const ALL: [OpKind; 3] = [OpKind::Load, OpKind::Store, OpKind::Membar];

    /// Index into per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpKind::Load => 0,
            OpKind::Store => 1,
            OpKind::Membar => 2,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The dynamic class of a memory operation as decoded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// A load.
    Load,
    /// A store.
    Store,
    /// An atomic read-modify-write (swap, cas, ldstub); ordered as both a
    /// load and a store.
    Atomic,
    /// A `Membar` with its 4-bit ordering mask.
    Membar(MembarMask),
    /// `Stbar`: store-store ordering, equivalent to `Membar #StoreStore`
    /// (Table 3 note). Kept distinct because PSO programs use it natively.
    Stbar,
}

impl OpClass {
    /// The counter classes this operation belongs to.
    pub fn kinds(self) -> &'static [OpKind] {
        match self {
            OpClass::Load => &[OpKind::Load],
            OpClass::Store => &[OpKind::Store],
            OpClass::Atomic => &[OpKind::Load, OpKind::Store],
            OpClass::Membar(_) | OpClass::Stbar => &[OpKind::Membar],
        }
    }

    /// The effective membar mask: the instruction's mask for `Membar`,
    /// `#SS` for `Stbar`, empty otherwise.
    pub fn membar_mask(self) -> MembarMask {
        match self {
            OpClass::Membar(m) => m,
            OpClass::Stbar => MembarMask::SS,
            _ => MembarMask::NONE,
        }
    }

    /// Whether the operation reads memory.
    pub fn reads(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Atomic)
    }

    /// Whether the operation writes memory.
    pub fn writes(self) -> bool {
        matches!(self, OpClass::Store | OpClass::Atomic)
    }

    /// Whether the operation is a barrier (accesses no memory).
    pub fn is_barrier(self) -> bool {
        matches!(self, OpClass::Membar(_) | OpClass::Stbar)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Load => write!(f, "Load"),
            OpClass::Store => write!(f, "Store"),
            OpClass::Atomic => write!(f, "Atomic"),
            OpClass::Membar(m) => write!(f, "Membar({m})"),
            OpClass::Stbar => write!(f, "Stbar"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_is_both_kinds() {
        assert_eq!(OpClass::Atomic.kinds(), &[OpKind::Load, OpKind::Store]);
        assert!(OpClass::Atomic.reads() && OpClass::Atomic.writes());
    }

    #[test]
    fn stbar_is_membar_ss() {
        assert_eq!(OpClass::Stbar.membar_mask(), MembarMask::SS);
        assert_eq!(OpClass::Stbar.kinds(), &[OpKind::Membar]);
        assert!(OpClass::Stbar.is_barrier());
    }

    #[test]
    fn plain_ops_have_empty_mask() {
        assert!(OpClass::Load.membar_mask().is_empty());
        assert!(OpClass::Store.membar_mask().is_empty());
    }

    #[test]
    fn kind_indices_are_distinct() {
        let idx: Vec<usize> = OpKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }
}
