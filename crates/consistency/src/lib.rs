//! Memory consistency models as *ordering tables* (§2.2, §4, Tables 1–4).
//!
//! A consistency model is specified as a table whose rows and columns are
//! labelled with operation types. A `true` entry at (row `OPx`, column
//! `OPy`) means: every operation of type `OPx` that precedes an operation
//! `Y` of type `OPy` in program order must also *perform* before `Y`.
//!
//! SPARC v9's flexible `Membar` instruction carries a 4-bit mask (LL, LS,
//! SL, SS); table entries involving membars hold masks instead of booleans,
//! and the boolean is obtained by ANDing the instruction's mask with the
//! table's mask (§4).
//!
//! This crate provides:
//!
//! * [`MembarMask`] — the 4-bit SPARC membar ordering mask.
//! * [`OpClass`] — the dynamic class of a memory operation (load, store,
//!   atomic read-modify-write, membar, stbar).
//! * [`OpKind`] — the three counter classes of the Allowable Reordering
//!   checker (`Load`, `Store`, `Membar`).
//! * [`Model`] / [`OrderingTable`] — SC, TSO, PSO, RMO, and PC tables with
//!   the membar-mask resolution rule.

pub mod membar;
pub mod op;
pub mod oracle;
pub mod table;

pub use membar::MembarMask;
pub use op::{OpClass, OpKind};
pub use oracle::{verify, verify_model, CommitRecord, Inconsistency, Verdict};
pub use table::{requires_between, Model, OrderingTable, Requirement};
