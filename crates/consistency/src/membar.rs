//! The SPARC v9 membar ordering mask.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// The 4-bit ordering mask carried by a SPARC v9 `Membar` instruction (§4).
///
/// Each bit requests one class of ordering between operations before and
/// after the membar in program order:
///
/// * `LL` — loads before the membar perform before loads after it,
/// * `LS` — loads before stores,
/// * `SL` — stores before loads,
/// * `SS` — stores before stores.
///
/// `Stbar` is equivalent to `Membar #StoreStore` (Table 3 note).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MembarMask(u8);

impl MembarMask {
    /// The empty mask: orders nothing.
    pub const NONE: MembarMask = MembarMask(0);
    /// Load-Load ordering (`#LoadLoad`).
    pub const LL: MembarMask = MembarMask(0b0001);
    /// Load-Store ordering (`#LoadStore`).
    pub const LS: MembarMask = MembarMask(0b0010);
    /// Store-Load ordering (`#StoreLoad`).
    pub const SL: MembarMask = MembarMask(0b0100);
    /// Store-Store ordering (`#StoreStore`).
    pub const SS: MembarMask = MembarMask(0b1000);
    /// All four orderings: a full fence (`#Sync`-strength membar).
    pub const ALL: MembarMask = MembarMask(0b1111);

    /// Builds a mask from its raw 4-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if bits above the low 4 are set.
    pub fn from_bits(bits: u8) -> MembarMask {
        assert!(bits <= 0b1111, "membar mask is 4 bits");
        MembarMask(bits)
    }

    /// The raw 4-bit encoding.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether any bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether this mask and `other` share any bit — the paper's AND rule:
    /// "A boolean value is obtained from the mask by computing the logical
    /// AND between the mask in the instruction and the mask in the table.
    /// If the result is non-zero, ordering is required."
    #[inline]
    pub fn intersects(self, other: MembarMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether all bits of `other` are contained in this mask.
    #[inline]
    pub fn contains(self, other: MembarMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Const-context union, for building the static ordering tables.
    #[inline]
    pub const fn union(self, other: MembarMask) -> MembarMask {
        MembarMask(self.0 | other.0)
    }
}

impl BitOr for MembarMask {
    type Output = MembarMask;
    fn bitor(self, rhs: MembarMask) -> MembarMask {
        MembarMask(self.0 | rhs.0)
    }
}

impl BitAnd for MembarMask {
    type Output = MembarMask;
    fn bitand(self, rhs: MembarMask) -> MembarMask {
        MembarMask(self.0 & rhs.0)
    }
}

impl fmt::Debug for MembarMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "#none");
        }
        let mut first = true;
        for (bit, name) in [
            (Self::LL, "LL"),
            (Self::LS, "LS"),
            (Self::SL, "SL"),
            (Self::SS, "SS"),
        ] {
            if self.intersects(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "#{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Display for MembarMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_rule() {
        let instr = MembarMask::SL;
        assert!(instr.intersects(MembarMask::SL | MembarMask::SS));
        assert!(!instr.intersects(MembarMask::LL | MembarMask::LS));
    }

    #[test]
    fn ops_compose() {
        let m = MembarMask::LL | MembarMask::SS;
        assert!(m.contains(MembarMask::LL));
        assert!(m.contains(MembarMask::SS));
        assert!(!m.contains(MembarMask::SL));
        assert_eq!((m & MembarMask::LL).bits(), MembarMask::LL.bits());
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", MembarMask::NONE), "#none");
        assert_eq!(format!("{:?}", MembarMask::LL | MembarMask::SS), "#LL|#SS");
        assert_eq!(format!("{:?}", MembarMask::ALL), "#LL|#LS|#SL|#SS");
    }

    #[test]
    #[should_panic(expected = "4 bits")]
    fn from_bits_validates() {
        let _ = MembarMask::from_bits(0b1_0000);
    }
}
