//! Property tests of the ordering tables: strictness is monotone
//! SC ⊇ PC = TSO ⊇ PSO ⊇ RMO for plain accesses, and the cross-model
//! union rule is conservative.

use dvmc_consistency::{requires_between, MembarMask, Model, OpClass};
use proptest::prelude::*;

fn plain_class() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::Load),
        Just(OpClass::Store),
        Just(OpClass::Atomic),
    ]
}

fn any_class() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        3 => plain_class(),
        1 => (0u8..16).prop_map(|b| OpClass::Membar(MembarMask::from_bits(b))),
        1 => Just(OpClass::Stbar),
    ]
}

proptest! {
    /// Every ordering a weaker model requires is required by every
    /// stronger model (strictness chain for plain accesses).
    #[test]
    fn strictness_is_monotone(a in plain_class(), b in plain_class()) {
        let chain = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];
        for pair in chain.windows(2) {
            let (stronger, weaker) = (pair[0], pair[1]);
            if weaker.table().requires(a, b) {
                prop_assert!(
                    stronger.table().requires(a, b),
                    "{weaker} requires {a}->{b} but {stronger} does not"
                );
            }
        }
        prop_assert_eq!(
            Model::Pc.table().requires(a, b),
            Model::Tso.table().requires(a, b),
            "PC and TSO agree on plain accesses"
        );
    }

    /// The cross-model union rule equals the disjunction of both tables.
    #[test]
    fn union_rule_is_conservative(
        a in any_class(),
        b in any_class(),
        m1 in prop_oneof![Just(Model::Sc), Just(Model::Tso), Just(Model::Pso), Just(Model::Rmo)],
        m2 in prop_oneof![Just(Model::Sc), Just(Model::Tso), Just(Model::Pso), Just(Model::Rmo)],
    ) {
        let union = requires_between(m1, a, m2, b);
        prop_assert!(union >= m1.table().requires(a, b));
        prop_assert!(union >= m2.table().requires(a, b));
        prop_assert_eq!(union, m1.table().requires(a, b) || m2.table().requires(a, b));
    }

    /// A full-mask membar orders everything against everything, under
    /// every model.
    #[test]
    fn full_membar_is_a_fence(a in plain_class()) {
        for model in Model::ALL {
            let fence = OpClass::Membar(MembarMask::ALL);
            prop_assert!(model.table().requires(a, fence), "{model}: {a} -> fence");
            prop_assert!(model.table().requires(fence, a), "{model}: fence -> {a}");
        }
    }

    /// An empty-mask membar orders nothing under RMO (plain columns).
    #[test]
    fn empty_membar_is_inert_when_relaxed(a in plain_class()) {
        let nop = OpClass::Membar(MembarMask::NONE);
        prop_assert!(!Model::Rmo.table().requires(a, nop));
        prop_assert!(!Model::Rmo.table().requires(nop, a));
    }
}
