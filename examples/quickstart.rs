//! Quickstart: build an 8-node TSO directory system with full DVMC +
//! SafetyNet, run an OLTP-like workload for a fixed transaction count, and
//! print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dvmc::consistency::Model;
use dvmc::sim::{Protocol, SystemBuilder};
use dvmc::workloads::spec::WorkloadKind;

fn main() {
    let mut system = SystemBuilder::new()
        .nodes(8)
        .protocol(Protocol::Directory)
        .model(Model::Tso)
        .dvmc(true)
        .workload(WorkloadKind::Oltp, 32)
        .seed(7)
        .build();

    let report = system.run_to_completion(20_000_000);

    println!("== DVMC quickstart: 8-node TSO directory system, oltp ==");
    println!("completed:           {}", report.completed);
    println!("cycles:              {}", report.cycles);
    println!("transactions:        {}", report.transactions);
    println!("retired memory ops:  {}", report.retired_ops());
    println!("violations:          {}", report.violations.len());
    println!();
    println!(
        "demand L1 misses:    {}",
        report.l1_misses()
    );
    println!(
        "replay L1 misses:    {}  (the paper's Figure 6 numerator)",
        report.replay_l1_misses()
    );
    let replays: u64 = report.replay_stats.iter().map(|s| s.replays).sum();
    let vc_hits: u64 = report.replay_stats.iter().map(|s| s.vc_hits).sum();
    println!(
        "replays:             {replays} ({vc_hits} VC hits, {:.1}% hit rate)",
        100.0 * vc_hits as f64 / replays.max(1) as f64
    );
    println!();
    println!(
        "max-link bandwidth:  {:.3} bytes/cycle",
        report.max_link_bandwidth()
    );
    println!(
        "inform traffic:      {} bytes ({:.1}% of total)",
        report.checker_bytes,
        100.0 * report.checker_bytes as f64 / report.total_bytes.max(1) as f64
    );
    println!(
        "BER coordination:    {} bytes",
        report.ber_bytes
    );

    assert!(report.completed, "workload must finish its transaction quota");
    assert!(
        report.violations.is_empty(),
        "an error-free run must raise no violations: {:?}",
        report.violations
    );
    println!("\nall checkers stayed silent on an error-free run — as they should.");
}
