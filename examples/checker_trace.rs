//! Using the DVMC checkers as a standalone library (§3's modularity
//! claim): drive each checker with a hand-written architectural event
//! trace — no simulator involved — and watch them accept a legal trace and
//! reject corrupted variants of it.
//!
//! ```sh
//! cargo run --release --example checker_trace
//! ```

use dvmc::consistency::{Model, OpClass};
use dvmc::core::coherence::{EpochKind, HomeChecker, InformEpoch};
use dvmc::core::{ReorderChecker, ReplayLookup, UniprocChecker};
use dvmc::types::{BlockAddr, NodeId, SeqNum, Ts16, WordAddr};

fn main() {
    println!("== driving the three DVMC checkers from an event trace ==\n");

    // --- 1. Allowable Reordering (§4.2) --------------------------------
    // Program order: ST A (#0), LD B (#1). Under TSO the load may perform
    // first; under SC it may not.
    for model in [Model::Tso, Model::Sc] {
        let mut chk = ReorderChecker::new();
        chk.op_committed(SeqNum(0), OpClass::Store, model);
        chk.op_committed(SeqNum(1), OpClass::Load, model);
        let load_first = chk.op_performed(SeqNum(1), OpClass::Load, model);
        let store_after = chk.op_performed(SeqNum(0), OpClass::Store, model);
        println!(
            "reorder checker [{model}]: load-before-store perform order -> {}",
            match (load_first, store_after) {
                (Ok(()), Ok(())) => "accepted (Store->Load is relaxed)".to_string(),
                (_, Err(v)) => format!("rejected: {v}"),
                (Err(v), _) => format!("rejected: {v}"),
            }
        );
    }

    // --- 2. Uniprocessor Ordering (§4.1) --------------------------------
    let mut chk = UniprocChecker::default();
    let a = WordAddr(0x40);
    chk.store_committed(a, 7);
    // The original execution forwarded 7 from the LSQ — replay agrees:
    assert_eq!(chk.replay_load(a, 7).unwrap(), ReplayLookup::VcHit);
    println!("\nuniproc checker: replay of a correctly forwarded load -> accepted");
    // A corrupted LSQ forwarded 6 instead:
    let verdict = chk.replay_load(a, 6).unwrap_err();
    println!("uniproc checker: replay of a mis-forwarded load       -> {verdict}");
    // The write buffer drains a corrupted value to the cache:
    let verdict = chk.store_performed(a, 99).unwrap_err();
    println!("uniproc checker: corrupted write-buffer drain         -> {verdict}");

    // --- 3. Cache Coherence (§4.3) --------------------------------------
    let addr = BlockAddr(0x99);
    let mk = |node: u8, kind, start: u16, end: u16, h0: u16, h1: u16| {
        InformEpoch {
            addr,
            kind,
            node: NodeId(node),
            start: Ts16(start),
            end: Ts16(end),
            start_hash: h0,
            end_hash: h1,
        }
        .into()
    };
    // A legal epoch history: writer, two readers, writer again.
    let mut home = HomeChecker::new(NodeId(0), 256);
    home.met_mut().ensure_entry(addr, Ts16(0), 0xAAAA);
    home.push(mk(1, EpochKind::ReadWrite, 1, 5, 0xAAAA, 0xBBBB)).unwrap();
    home.push(mk(2, EpochKind::ReadOnly, 5, 9, 0xBBBB, 0xBBBB)).unwrap();
    home.push(mk(3, EpochKind::ReadOnly, 6, 8, 0xBBBB, 0xBBBB)).unwrap();
    home.push(mk(2, EpochKind::ReadWrite, 9, 12, 0xBBBB, 0xCCCC)).unwrap();
    home.flush().unwrap();
    println!("\ncoherence checker: legal RW/RO/RO/RW epoch history     -> accepted");

    // Single-writer violation: overlapping Read-Write epochs.
    let mut home = HomeChecker::new(NodeId(0), 256);
    home.met_mut().ensure_entry(addr, Ts16(0), 0xAAAA);
    home.push(mk(1, EpochKind::ReadWrite, 1, 6, 0xAAAA, 0xBBBB)).unwrap();
    home.push(mk(2, EpochKind::ReadWrite, 4, 9, 0xBBBB, 0xCCCC)).unwrap();
    let verdict = home.flush().unwrap_err();
    println!("coherence checker: two concurrent writers (SWMR break) -> {verdict}");

    // Data-propagation violation: a block corrupted in flight.
    let mut home = HomeChecker::new(NodeId(0), 256);
    home.met_mut().ensure_entry(addr, Ts16(0), 0xAAAA);
    home.push(mk(1, EpochKind::ReadWrite, 1, 5, 0xAAAA, 0xBBBB)).unwrap();
    home.push(mk(2, EpochKind::ReadOnly, 6, 8, 0xDEAD, 0xDEAD)).unwrap();
    let verdict = home.flush().unwrap_err();
    println!("coherence checker: corrupted data transfer             -> {verdict}");

    println!("\nthe three checkers compose into DVMC, but each stands alone —");
    println!("exactly the modularity the paper's framework claims (§3).");
}
