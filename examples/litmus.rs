//! Litmus tests across consistency models: runs the classic
//! store-buffering (SB) pattern on two cores, with and without fences,
//! under SC / TSO / PSO / RMO, and shows which outcomes each model admits
//! — with the DVMC checkers watching the whole time.
//!
//! ```sh
//! cargo run --release --example litmus
//! ```

use dvmc::coherence::{Cluster, ClusterConfig, Protocol};
use dvmc::consistency::{verify_model, CommitRecord, MembarMask, Model, OpClass};
use dvmc::pipeline::{Core, CoreConfig, Instr, ScriptedStream};
use dvmc::types::NodeId;

/// Runs two scripted threads to completion on a real coherent memory
/// system; returns each core's full commit log and the checker violation
/// count.
fn run(model: Model, scripts: Vec<Vec<Instr>>) -> (Vec<Vec<CommitRecord>>, usize) {
    let cluster_cfg = ClusterConfig::paper_default(scripts.len(), Protocol::Directory);
    let mut cluster = Cluster::new(cluster_cfg);
    let mut cores: Vec<Core> = scripts
        .into_iter()
        .map(|s| {
            let cfg = CoreConfig {
                model,
                record_commits: true,
                ..CoreConfig::default()
            };
            Core::new(cfg, Box::new(ScriptedStream::new(s)))
        })
        .collect();
    for _ in 0..500_000 {
        let now = cluster.now();
        for (i, core) in cores.iter_mut().enumerate() {
            let id = NodeId(i as u8);
            let inv = cluster.drain_invalidated(id);
            core.note_invalidations(&inv);
            while let Some(resp) = cluster.pop_resp(id) {
                core.deliver(resp);
            }
            for req in core.tick(now) {
                cluster.submit(id, req);
            }
        }
        cluster.tick();
        if cores.iter().all(Core::is_done) {
            break;
        }
    }
    let mut violations = cluster.finish().len();
    let logs = cores
        .iter_mut()
        .map(|c| {
            violations += c.drain_violations().len();
            c.take_commit_log()
        })
        .collect();
    (logs, violations)
}

/// Committed load values of one core, in program order.
fn loads(log: &[CommitRecord]) -> Vec<u64> {
    log.iter()
        .filter(|r| r.class == OpClass::Load)
        .map(|r| r.value)
        .collect()
}

fn sb_scripts(fenced: bool) -> Vec<Vec<Instr>> {
    let (x, y) = (1024, 2048);
    // Warm both variables into each cache so the final loads can race the
    // remote stores — the canonical SB interleaving.
    let warm = |a, b| vec![Instr::load(a), Instr::load(b), Instr::Delay(400)];
    let tail = |store_addr, load_addr| {
        let mut v = vec![Instr::store(store_addr, 1)];
        if fenced {
            v.push(Instr::membar(MembarMask::ALL));
        }
        v.push(Instr::load(load_addr));
        v
    };
    let mut t0 = warm(x, y);
    t0.extend(tail(x, y));
    let mut t1 = warm(y, x);
    t1.extend(tail(y, x));
    vec![t0, t1]
}

fn main() {
    println!("== store-buffering litmus: t0: x=1; r0=y   t1: y=1; r1=x ==\n");
    println!("{:<7} {:<8} {:>10} verdict", "model", "fences", "(r0, r1)");
    println!("{}", "-".repeat(56));
    for fenced in [false, true] {
        for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
            let (logs, violations) = run(model, sb_scripts(fenced));
            let r0 = *loads(&logs[0]).last().expect("loads committed");
            let r1 = *loads(&logs[1]).last().expect("loads committed");
            // The offline oracle must agree with the silent online
            // checkers: every execution the machine produced is legal
            // under its model's ordering table.
            let oracle = verify_model(model, &logs);
            assert!(
                oracle.is_allowed(),
                "{model} fenced={fenced}: oracle rejected a checker-clean run: {oracle:?}"
            );
            let relaxed = r0 == 0 && r1 == 0;
            let verdict = match (model, fenced, relaxed) {
                (Model::Sc, _, true) | (_, true, true) => "FORBIDDEN outcome observed!",
                (Model::Sc, _, false) | (_, true, false) => "strict: (0,0) correctly absent",
                (_, false, true) => "relaxed outcome observed (write buffering)",
                (_, false, false) => "relaxed outcome admissible but not hit",
            };
            println!(
                "{:<7} {:<8} {:>10} {} [{} checker violations]",
                model.to_string(),
                if fenced { "membar" } else { "none" },
                format!("({r0}, {r1})"),
                verdict,
                violations
            );
            assert_eq!(violations, 0, "checkers must stay silent");
            if model == Model::Sc || fenced {
                assert!(!relaxed, "{model} fenced={fenced} must forbid (0,0)");
            }
        }
        println!();
    }
    println!("TSO/PSO/RMO expose the store-buffering relaxation; SC and fenced");
    println!("executions never do — and both the online DVMC checkers and the");
    println!("offline constraint-graph oracle accept every run, because each is");
    println!("consistent with its model's ordering table.");
}
