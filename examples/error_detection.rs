//! Error-detection demo (§6.1): inject one fault of every category into a
//! running OLTP workload and show how each is detected — by which checker,
//! how quickly, and whether SafetyNet could still recover.
//!
//! ```sh
//! cargo run --release --example error_detection
//! ```

use dvmc::consistency::Model;
use dvmc::faults::{all_faults, FaultPlan};
use dvmc::sim::SystemBuilder;
use dvmc::types::NodeId;
use dvmc::workloads::spec::WorkloadKind;

fn main() {
    println!("== DVMC error-detection demo: one fault of every category ==\n");
    println!(
        "{:<22} {:>9} {:>9} {:>12}  first violation",
        "fault", "detected", "latency", "recoverable"
    );
    println!("{}", "-".repeat(86));

    let mut all_detected = true;
    for (i, fault) in all_faults(NodeId(1), NodeId(2)).into_iter().enumerate() {
        let mut system = SystemBuilder::new()
            .nodes(4)
            .model(Model::Tso)
            .workload(WorkloadKind::Oltp, 1_000_000) // runs until detection
            .seed(100 + i as u64)
            .fault(FaultPlan {
                at_cycle: 20_000,
                fault,
            })
            .watchdog(100_000)
            .max_cycles(3_000_000)
            .build();
        let report = system.run_to_completion(3_000_000);
        match report.detection {
            Some(d) => {
                let what = match &d.violation {
                    Some(v) => shorten(&v.to_string()),
                    None => "hang watchdog (lost message)".to_string(),
                };
                println!(
                    "{:<22} {:>9} {:>9} {:>12}  {}",
                    fault.to_string(),
                    "yes",
                    d.latency(),
                    if d.recoverable { "yes" } else { "NO" },
                    what
                );
            }
            None => {
                all_detected = false;
                println!("{:<22} {:>9}", fault.to_string(), "MISSED");
            }
        }
    }
    println!();
    if all_detected {
        println!("every injected error was detected — matching the paper's §6.1 result.");
    } else {
        println!("some fault escaped detection; see EXPERIMENTS.md for discussion.");
    }
}

fn shorten(s: &str) -> String {
    if s.len() > 60 {
        format!("{}…", &s[..59])
    } else {
        s.to_string()
    }
}
