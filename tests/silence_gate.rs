//! Fault-free long-horizon silence gate.
//!
//! The DVMC checkers' false-positive rate must be *zero*: §4's soundness
//! argument allows a checker to miss nothing and to cry wolf never. The
//! per-experiment tests run a few hundred thousand cycles; the failure
//! modes this PR fixed (write-buffer forwarding from performed stores,
//! perform-in-flight forwarding races, capacity evictions hiding remote
//! writes from the §4.1 forgiveness window) all needed millions of
//! committed operations of cache pressure before they produced a false
//! `LoadMismatch`. This gate drives every evaluated consistency model on
//! both protocols through a dense closed-loop OLTP mix until the grid has
//! retired a multi-million-operation total, and requires absolute
//! silence: no violations of any kind and no watchdog hang.
//!
//! (The release-profile `exp_soak` quiet arm extends the same gate to
//! 2M-cycle open-loop service runs with mid-run model switching.)

use dvmc::consistency::Model;
use dvmc::sim::{Protocol, SystemBuilder};
use dvmc::workloads::spec::WorkloadKind;

/// Per-cell horizon: long enough that, summed over the four models, each
/// protocol's grid retires well over a million operations.
const HORIZON: u64 = 1_400_000;

/// Runs one fault-free cell to its horizon and returns its retired-op
/// count, asserting silence.
fn silent_ops(protocol: Protocol, model: Model) -> u64 {
    let mut sys = SystemBuilder::new()
        .nodes(4)
        .protocol(protocol)
        .model(model)
        // A quota no thread reaches inside the budget: the run is
        // horizon-bound, so every cell contributes its full length.
        .workload(WorkloadKind::Oltp, 1_000_000)
        .seed(7)
        .watchdog(100_000)
        .max_cycles(HORIZON)
        .build();
    let report = sys.run_to_completion(HORIZON);
    assert!(
        !report.hung,
        "{protocol:?}/{model}: fault-free run hung at cycle {}",
        report.cycles
    );
    assert!(
        report.violations.is_empty(),
        "{protocol:?}/{model}: FALSE VIOLATION on a fault-free run: {:?}",
        report.violations
    );
    report.core_stats.iter().map(|s| s.retired_ops).sum()
}

fn silence_grid(protocol: Protocol) {
    let mut total_ops = 0u64;
    for model in Model::EVALUATED {
        total_ops += silent_ops(protocol, model);
    }
    // "Long-horizon" must stay meaningful if defaults drift: each
    // protocol's four models together retire over a million operations
    // (the two-protocol grid total lands near three million).
    assert!(
        total_ops >= 1_000_000,
        "{protocol:?}: grid retired only {total_ops} ops — horizon too short for the gate"
    );
}

#[test]
fn directory_long_horizon_is_silent_on_every_model() {
    silence_grid(Protocol::Directory);
}

#[test]
fn snooping_long_horizon_is_silent_on_every_model() {
    silence_grid(Protocol::Snooping);
}
