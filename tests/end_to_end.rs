//! End-to-end integration tests through the `dvmc` facade: full systems,
//! fault sweeps, scripted programs under every model, and checker
//! composition — spanning every crate in the workspace.

use dvmc::coherence::{Cluster, ClusterConfig, Protocol};
use dvmc::consistency::{MembarMask, Model, OpClass};
use dvmc::faults::{all_faults, FaultPlan};
use dvmc::pipeline::{Core, CoreConfig, Instr, ScriptedStream};
use dvmc::sim::{Protection, SystemBuilder};
use dvmc::types::NodeId;
use dvmc::workloads::spec::WorkloadKind;

/// Drives scripted programs on a real memory system; returns per-core
/// committed load values and the violation count.
fn run_scripts(
    model: Model,
    protocol: Protocol,
    scripts: Vec<Vec<Instr>>,
) -> (Vec<Vec<u64>>, usize) {
    let mut cluster = Cluster::new(ClusterConfig::paper_default(
        scripts.len().max(2),
        protocol,
    ));
    let mut cores: Vec<Core> = scripts
        .into_iter()
        .map(|s| {
            Core::new(
                CoreConfig {
                    model,
                    record_commits: true,
                    ..CoreConfig::default()
                },
                Box::new(ScriptedStream::new(s)),
            )
        })
        .collect();
    for _ in 0..500_000 {
        let now = cluster.now();
        for (i, core) in cores.iter_mut().enumerate() {
            let id = NodeId(i as u8);
            let inv = cluster.drain_invalidated(id);
            core.note_invalidations(&inv);
            while let Some(resp) = cluster.pop_resp(id) {
                core.deliver(resp);
            }
            for req in core.tick(now) {
                cluster.submit(id, req);
            }
        }
        cluster.tick();
        if cores.iter().all(Core::is_done) {
            break;
        }
    }
    assert!(cores.iter().all(Core::is_done), "programs must drain");
    let mut violations = cluster.finish().len();
    let values = cores
        .iter_mut()
        .map(|c| {
            violations += c.drain_violations().len();
            c.take_commit_log()
                .into_iter()
                .filter(|r| r.class == OpClass::Load)
                .map(|r| r.value)
                .collect()
        })
        .collect();
    (values, violations)
}

/// Message-passing litmus: the fenced handshake must never show stale
/// data under any model or protocol.
#[test]
fn message_passing_handshake_is_safe_everywhere() {
    for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let data = 4096;
            let flag = 8192;
            let writer = vec![
                Instr::store(data, 99),
                Instr::membar(MembarMask::ALL),
                Instr::store(flag, 1),
            ];
            let mut reader: Vec<Instr> = (0..80).map(|_| Instr::load(flag)).collect();
            reader.push(Instr::membar(MembarMask::ALL));
            reader.push(Instr::load(data));
            let (values, violations) = run_scripts(model, protocol, vec![writer, reader]);
            let n = values[1].len();
            let flag_seen = values[1][n - 2];
            let data_seen = values[1][n - 1];
            if flag_seen == 1 {
                assert_eq!(data_seen, 99, "{model} {protocol:?}: stale data after fence");
            }
            assert_eq!(violations, 0, "{model} {protocol:?}");
        }
    }
}

/// Independent-reads-independent-writes across four cores: every observed
/// per-location value sequence must be monotone in the writers' order
/// (coherence), under every model.
#[test]
fn coherence_keeps_per_location_order() {
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        let x = 512;
        let w0 = (1..=8).map(|i| Instr::store(x, i)).collect();
        let reader = |_: u64| (0..40).map(|_| Instr::load(x)).collect::<Vec<_>>();
        let (values, violations) =
            run_scripts(Model::Tso, protocol, vec![w0, reader(1), reader(2)]);
        for r in &values[1..] {
            let mut last = 0;
            for &v in r {
                assert!(
                    v >= last,
                    "{protocol:?}: value sequence must be monotone, got {r:?}"
                );
                last = v;
            }
        }
        assert_eq!(violations, 0, "{protocol:?}");
    }
}

/// PSO stbar semantics end to end: without the stbar a store pair may
/// reorder; with it the ordering is guaranteed.
#[test]
fn pso_stbar_orders_store_pairs() {
    let data = 4096;
    let flag = 8192;
    let writer = vec![
        Instr::store(data, 7),
        Instr::Mem {
            class: OpClass::Stbar,
            addr: dvmc::types::WordAddr(0),
            store_value: 0,
        },
        Instr::store(flag, 1),
    ];
    let mut reader: Vec<Instr> = (0..80).map(|_| Instr::load(flag)).collect();
    reader.push(Instr::membar(MembarMask::LL));
    reader.push(Instr::load(data));
    let (values, violations) = run_scripts(Model::Pso, Protocol::Directory, vec![writer, reader]);
    let n = values[1].len();
    if values[1][n - 2] == 1 {
        assert_eq!(values[1][n - 1], 7, "stbar must order the store pair");
    }
    assert_eq!(violations, 0);
}

/// IRIW (independent reads of independent writes): two writers, two
/// readers observing in opposite orders. Our protocols invalidate before
/// granting write permission, so stores are multi-copy atomic and the
/// paradoxical outcome (readers disagreeing on the store order) is
/// impossible even under RMO with fenced readers.
#[test]
fn litmus_iriw_is_forbidden_with_fenced_readers() {
    for model in [Model::Tso, Model::Rmo] {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let x = 1024;
            let y = 2048;
            let w0 = vec![Instr::store(x, 1)];
            let w1 = vec![Instr::store(y, 1)];
            let reader = |first: u64, second: u64| {
                let mut v: Vec<Instr> = (0..60).map(|_| Instr::load(first)).collect();
                v.push(Instr::membar(MembarMask::ALL));
                v.push(Instr::load(second));
                v
            };
            let (values, violations) =
                run_scripts(model, protocol, vec![w0, w1, reader(x, y), reader(y, x)]);
            // r2 polled x then read y; r3 polled y then read x.
            let n2 = values[2].len();
            let n3 = values[3].len();
            let (r2_first, r2_second) = (values[2][n2 - 2], values[2][n2 - 1]);
            let (r3_first, r3_second) = (values[3][n3 - 2], values[3][n3 - 1]);
            let paradox = r2_first == 1 && r2_second == 0 && r3_first == 1 && r3_second == 0;
            assert!(
                !paradox,
                "{model} {protocol:?}: readers disagreed on the store order"
            );
            assert_eq!(violations, 0, "{model} {protocol:?}");
        }
    }
}

#[test]
fn single_node_system_runs_all_workloads() {
    for kind in WorkloadKind::ALL {
        let mut sys = SystemBuilder::new()
            .nodes(1)
            .workload(kind, 4)
            .seed(3)
            .build();
        let report = sys.run_to_completion(20_000_000);
        assert!(report.completed, "{kind}: {report:?}");
        assert!(report.violations.is_empty(), "{kind}");
    }
}

#[test]
fn every_fault_category_is_detected_on_both_protocols() {
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        for (i, fault) in all_faults(NodeId(1), NodeId(2)).into_iter().enumerate() {
            // Delayed/duplicated/mis-routed messages can be *masked*: the
            // unordered data network tolerates reordering by design, and
            // order-tagged fills discard duplicates and strays. A masked
            // fault manifests no error, so there is nothing to detect
            // (the paper's random trials inject manifest errors).
            if matches!(
                fault,
                dvmc::faults::Fault::DuplicateMessage
                    | dvmc::faults::Fault::MisrouteMessage { .. }
                    | dvmc::faults::Fault::ReorderMessage { .. }
            ) {
                continue;
            }
            // A forgotten snooping owner usually self-heals: the real
            // owner's supply beats the home's stale one and the next GetM
            // restores the tracker — masked, not missed.
            if protocol == Protocol::Snooping
                && matches!(fault, dvmc::faults::Fault::MemCtrlForgetOwner { .. })
            {
                continue;
            }
            // Controller-state corruptions only manifest if the corrupted
            // entry is re-contended before the horizon — per-trial
            // detection is probabilistic (§6.1 reports detection *rates*).
            // Empirically that only bites the directory's forgotten-owner
            // tracker at the first seed (the stale entry happens not to be
            // re-fetched), so that one category keeps extra trials; every
            // other manifest category detects deterministically on the
            // single fixed seed and is asserted as such.
            let offs: &[u64] = if protocol == Protocol::Directory
                && matches!(fault, dvmc::faults::Fault::MemCtrlForgetOwner { .. })
            {
                &[0, 100, 200]
            } else {
                &[0]
            };
            let detected = offs.iter().any(|off| {
                let mut sys = SystemBuilder::new()
                    .nodes(4)
                    .protocol(protocol)
                    .workload(WorkloadKind::Oltp, 1_000_000)
                    .seed(31 + off + i as u64)
                    .fault(FaultPlan {
                        at_cycle: 15_000,
                        fault,
                    })
                    .watchdog(100_000)
                    .max_cycles(4_000_000)
                    .build();
                sys.run_to_completion(4_000_000).detection.is_some()
            });
            assert!(detected, "{protocol:?}: {fault} not detected in any trial");
        }
    }
}

#[test]
fn protection_config_controls_traffic_sources() {
    let mut sys = SystemBuilder::new()
        .nodes(2)
        .protection(Protection::SN_DVCC)
        .workload(WorkloadKind::Apache, 8)
        .seed(5)
        .build();
    let report = sys.run_to_completion(20_000_000);
    assert!(report.completed);
    assert!(report.checker_bytes > 0, "DVCC sends informs");
    assert!(report.ber_bytes > 0, "SN sends checkpoint coordination");
    // No DVUO -> no replays.
    assert!(report.replay_stats.iter().all(|s| s.replays == 0));
}

#[test]
fn hardware_cost_matches_paper_figures() {
    let cfg = dvmc::core::cost::CostConfig::paper_default();
    let cet_kb = cfg.cet_bytes_per_node() as f64 / 1024.0;
    let met_kb = cfg.met_bytes_per_controller() as f64 / 1024.0;
    assert!((68.0..76.0).contains(&cet_kb), "CET {cet_kb:.1} KB ~ 70 KB");
    assert!((98.0..106.0).contains(&met_kb), "MET {met_kb:.1} KB ~ 102 KB");
}

/// The ordering tables re-exported through the facade match Tables 1-4.
#[test]
fn facade_exposes_ordering_tables() {
    use dvmc::consistency::OpClass as C;
    assert!(Model::Tso.table().requires(C::Load, C::Store));
    assert!(!Model::Tso.table().requires(C::Store, C::Load));
    assert!(!Model::Pso.table().requires(C::Store, C::Store));
    assert!(!Model::Rmo.table().requires(C::Load, C::Load));
    assert!(Model::Sc.table().requires(C::Store, C::Load));
}
