//! Litmus-test conformance suite: runs the classic shapes (SB/Dekker,
//! MP, LB, WRC, IRIW, CoRR, S, R, 2+2W, CoWW, CoRW1) on the full
//! simulated machine — both coherence protocols, all four consistency
//! models — and checks the *dynamic* verdicts against the ordering
//! tables' ground truth:
//!
//! * an outcome the model's table **forbids** is never observed,
//! * DVMC raises **no violation** on error-free runs, whatever outcomes
//!   the model allows (no false positives), and
//! * the offline consistency oracle (`dvmc_consistency::oracle`) agrees:
//!   every execution the online checkers pass is `Allowed` offline.
//!
//! Each (test, model, protocol) combination runs under several
//! perturbation seeds; the program is fixed and only timing varies, so
//! the sweep explores interleavings without changing the set of
//! model-allowed outcomes.

use dvmc_consistency::{Model, OpClass};
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{Protocol, RecoveryOutcome, RecoveryPolicy, SystemBuilder};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;
use dvmc_workloads::LitmusTest;

const TRIALS: u64 = 8;

/// Runs one litmus trial; returns whether the characteristic relaxed
/// outcome was observed.
fn run_one(test: LitmusTest, model: Model, protocol: Protocol, seed: u64) -> bool {
    let mut sys = SystemBuilder::new()
        .nodes(test.threads())
        .model(model)
        .protocol(protocol)
        .dvmc(true)
        .workload(WorkloadKind::Litmus(test), 1)
        .seed(seed)
        .record_commits(true)
        .watchdog(100_000)
        .max_cycles(2_000_000)
        .build();
    let report = sys.run_to_completion(2_000_000);
    let label = format!("{test}/{model}/{protocol:?}/seed{seed}");
    assert!(
        report.completed && !report.hung,
        "{label}: run did not complete (cycles={}, hung={})",
        report.cycles,
        report.hung
    );
    assert!(
        report.violations.is_empty(),
        "{label}: DVMC raised a false violation on an error-free run: {:?}",
        report.violations
    );
    let logs = sys.commit_logs();
    let verdict = dvmc_consistency::verify_model(model, &logs);
    assert!(
        verdict.is_allowed(),
        "{label}: offline oracle rejected an execution the online \
         checkers passed: {verdict:?}"
    );
    let loads: Vec<Vec<u64>> = logs
        .into_iter()
        .map(|log| {
            log.into_iter()
                .filter(|r| r.class == OpClass::Load)
                .map(|r| r.value)
                .collect()
        })
        .collect();
    test.relaxed_observed(&loads)
}

/// Sweeps every litmus shape over both protocols under `model`, asserting
/// the ordering-table verdicts; returns, per test, how many trials showed
/// the relaxed outcome.
fn conformance_sweep(model: Model) {
    for test in LitmusTest::ALL {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let mut observed = 0u64;
            for trial in 0..TRIALS {
                let seed = dvmc_types::rng::derive_seed(0xB0_1D ^ trial, model as u64);
                if run_one(test, model, protocol, seed) {
                    observed += 1;
                }
            }
            if test.forbidden(model) {
                assert_eq!(
                    observed, 0,
                    "{test}/{model}/{protocol:?}: outcome forbidden by the {model} \
                     ordering table was observed in {observed}/{TRIALS} trials"
                );
            }
        }
    }
}

#[test]
fn litmus_conformance_sc() {
    conformance_sweep(Model::Sc);
}

#[test]
fn litmus_conformance_tso() {
    conformance_sweep(Model::Tso);
}

#[test]
fn litmus_conformance_pso() {
    conformance_sweep(Model::Pso);
}

#[test]
fn litmus_conformance_rmo() {
    conformance_sweep(Model::Rmo);
}

/// Conformance must survive recovery: every litmus shape runs with full
/// checkpoint/rollback/replay armed and a transient cache-data fault
/// landing mid-run on thread 0. The fault is detected, the system rolls
/// back to a validated checkpoint and replays — and the replayed
/// execution must still satisfy the ordering tables: forbidden outcomes
/// stay unobserved and no violation survives the rollback. A sweep that
/// never actually recovered would pass vacuously, so the test also
/// demands that a healthy majority of runs took the recovery path.
#[test]
fn litmus_conformance_survives_recovery() {
    let mut recovered_runs = 0u64;
    let mut total_runs = 0u64;
    for test in LitmusTest::ALL {
        for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
            for protocol in [Protocol::Directory, Protocol::Snooping] {
                let mut observed = 0u64;
                for trial in 0..4u64 {
                    let seed = dvmc_types::rng::derive_seed(0xFA_17 ^ trial, model as u64);
                    let mut sys = SystemBuilder::new()
                        .nodes(test.threads())
                        .model(model)
                        .protocol(protocol)
                        .dvmc(true)
                        .workload(WorkloadKind::Litmus(test), 1)
                        .seed(seed)
                        .record_commits(true)
                        .recovery(RecoveryPolicy::default())
                        .fault(FaultPlan {
                            at_cycle: 100,
                            fault: Fault::CacheBitFlip { node: NodeId(0) },
                        })
                        .watchdog(100_000)
                        .max_cycles(2_000_000)
                        .build();
                    let report = sys.run_to_completion(2_000_000);
                    let label = format!("{test}/{model}/{protocol:?}/seed{seed}+fault");
                    assert!(
                        report.completed && !report.hung,
                        "{label}: run did not complete under recovery (cycles={}, hung={})",
                        report.cycles,
                        report.hung
                    );
                    assert!(
                        report.violations.is_empty(),
                        "{label}: a violation survived rollback/replay: {:?}",
                        report.violations
                    );
                    if let Some(rec) = report.recovery {
                        assert_eq!(
                            rec.outcome,
                            RecoveryOutcome::Recovered,
                            "{label}: transient fault must be recoverable"
                        );
                        assert!(rec.attempts >= 1, "{label}: recovery without a rollback?");
                        recovered_runs += 1;
                    }
                    total_runs += 1;
                    let logs = sys.commit_logs();
                    // The commit log reflects the final (replayed)
                    // execution — rollback restores the log to the
                    // checkpoint's prefix — so the offline oracle must
                    // accept recovered runs too.
                    let verdict = dvmc_consistency::verify_model(model, &logs);
                    assert!(
                        verdict.is_allowed(),
                        "{label}: offline oracle rejected a recovered \
                         execution: {verdict:?}"
                    );
                    let loads: Vec<Vec<u64>> = logs
                        .into_iter()
                        .map(|log| {
                            log.into_iter()
                                .filter(|r| r.class == OpClass::Load)
                                .map(|r| r.value)
                                .collect()
                        })
                        .collect();
                    if test.relaxed_observed(&loads) {
                        observed += 1;
                    }
                }
                if test.forbidden(model) {
                    assert_eq!(
                        observed, 0,
                        "{test}/{model}/{protocol:?}: forbidden outcome observed in a \
                         recovered run ({observed}/4 trials)"
                    );
                }
            }
        }
    }
    assert!(
        recovered_runs * 2 >= total_runs,
        "only {recovered_runs}/{total_runs} runs exercised rollback/replay — \
         the fault is being masked and the sweep is vacuous"
    );
}

/// The allowed direction, where the machine can show it: TSO's write
/// buffer makes SB's relaxed outcome `(r0, r1) = (0, 0)` reachable, and
/// the harness must be able to see it — otherwise "forbidden outcomes are
/// never observed" would pass vacuously on a harness that cannot observe
/// anything.
#[test]
fn litmus_sb_relaxation_is_observable_under_tso() {
    let mut observed = 0u64;
    for trial in 0..32 {
        let seed = dvmc_types::rng::derive_seed(0x5B_0B5, trial);
        if run_one(LitmusTest::Sb, Model::Tso, Protocol::Directory, seed) {
            observed += 1;
        }
    }
    assert!(
        observed > 0,
        "SB under TSO never showed (0,0) in 32 trials: the harness \
         cannot observe store-to-load relaxation"
    );
}

/// Same anti-vacuity check for the new coherence-order shapes: PSO's
/// out-of-order write-buffer drains make 2+2W's relaxed outcome (both
/// threads' *first* stores winning the coherence races) reachable, and
/// the done-flag observer must be able to see it.
#[test]
fn litmus_2p2w_relaxation_is_observable_under_pso() {
    let mut observed = 0u64;
    for trial in 0..32 {
        let seed = dvmc_types::rng::derive_seed(0x0222, trial);
        if run_one(LitmusTest::TwoPlusTwoW, Model::Pso, Protocol::Directory, seed) {
            observed += 1;
        }
    }
    assert!(
        observed > 0,
        "2+2W under PSO never showed (x,y)=(1,1) in 32 trials: the \
         observer cannot see store-to-store relaxation"
    );
}
