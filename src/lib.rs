//! # DVMC — Dynamic Verification of Memory Consistency
//!
//! This crate is the facade for a full reproduction of *"Dynamic Verification
//! of Memory Consistency in Cache-Coherent Multithreaded Computer
//! Architectures"* (Meixner & Sorin, DSN 2006). It re-exports every subsystem
//! crate in the workspace:
//!
//! * [`types`] — words, blocks, addresses, CRC-16 hashing, 16-bit logical time.
//! * [`consistency`] — ordering tables for SC/TSO/PSO/RMO (+ PC) and membar masks.
//! * [`core`] — the paper's contribution: the Uniprocessor Ordering,
//!   Allowable Reordering, and Cache Coherence checkers.
//! * [`interconnect`] — 2D torus and ordered broadcast tree networks.
//! * [`coherence`] — MOSI directory and snooping protocols with private L1/L2.
//! * [`pipeline`] — an out-of-order core model (ROB, LSQ, write buffer,
//!   verification stage).
//! * [`ber`] — SafetyNet-style backward error recovery.
//! * [`workloads`] — synthetic stand-ins for the Wisconsin commercial workloads.
//! * [`faults`] — error injection used by the §6.1 detection experiments.
//! * [`sim`] — the full-system simulator tying everything together.
//!
//! ## Quickstart
//!
//! ```rust
//! use dvmc::sim::{SystemBuilder, Protocol};
//! use dvmc::consistency::Model;
//! use dvmc::workloads::spec::WorkloadKind;
//!
//! let mut system = SystemBuilder::new()
//!     .nodes(4)
//!     .protocol(Protocol::Directory)
//!     .model(Model::Tso)
//!     .dvmc(true)
//!     .workload(WorkloadKind::Oltp, 64)
//!     .seed(7)
//!     .build();
//! let report = system.run_to_completion(2_000_000);
//! assert!(report.violations.is_empty());
//! ```

pub use dvmc_ber as ber;
pub use dvmc_coherence as coherence;
pub use dvmc_consistency as consistency;
pub use dvmc_core as core;
pub use dvmc_faults as faults;
pub use dvmc_interconnect as interconnect;
pub use dvmc_pipeline as pipeline;
pub use dvmc_sim as sim;
pub use dvmc_types as types;
pub use dvmc_workloads as workloads;
